// M1 -- micro-benchmarks of the substrate: simulator step throughput
// under each scheduler, run-recording overhead, SCC scaling, failure
// detector query cost, digest computation, and heap-allocation counts
// of the explorer hot paths.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "algo/paxos_consensus.hpp"
#include "core/explorer.hpp"
// The interner micro-benchmark measures the reduction layer's own
// hot path, so it is a justified importer of the private header.
#include "core/reduction.hpp"  // ksa-lint: allow(layering)
#include "fd/sources.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

// ---------------------------------------------------------------------
// Allocation-counting hook.
//
// This binary replaces the global operator new/delete with a counting
// shim so benchmarks can report allocations-per-unit-of-work, the
// metric the explorer's allocation-lean hot paths (ghost stepping,
// interned message hashing, scratch reuse) are tuned against.  Wall
// time alone under-reports allocator pressure: a malloc that is cheap
// in a micro-benchmark fragments and contends at exploration scale.
//
// Besides call/byte totals, the shim tracks LIVE and PEAK heap bytes:
// each allocation is prefixed with a 16-byte header stashing its size,
// so the matching delete can subtract it.  Peak tracking is what sizes
// the out-of-core store's memory ceiling (doc/performance.md §6): the
// BM_ExplorerPeakMemory cases below measure the whole-process heap
// high-water mark of a spill-forced exploration and cross-check the
// explorer's own peak_resident_bytes accounting against it.
//
// The counters are atomics so multi-threaded cases stay well-defined;
// the hook lives only in this benchmark binary.  Aligned-new overloads
// are deliberately NOT intercepted: the language pairs them with
// aligned delete, so no un-prefixed pointer can ever reach the
// prefix-stripping deletes below.

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_bytes{0};

/// Header large enough to preserve max_align_t alignment of the
/// returned pointer.
constexpr std::size_t kAllocHeader =
    alignof(std::max_align_t) > sizeof(std::size_t)
        ? alignof(std::max_align_t)
        : sizeof(std::size_t);

void* counted_alloc(std::size_t size) {
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    const std::uint64_t live =
        g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
    std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
    while (live > peak &&
           !g_peak_bytes.compare_exchange_weak(peak, live,
                                               std::memory_order_relaxed)) {
    }
    void* raw = std::malloc(size + kAllocHeader);
    if (!raw) throw std::bad_alloc();
    std::memcpy(raw, &size, sizeof(size));
    return static_cast<char*>(raw) + kAllocHeader;
}

void counted_free(void* p) noexcept {
    if (p == nullptr) return;
    char* raw = static_cast<char*>(p) - kAllocHeader;
    std::size_t size = 0;
    std::memcpy(&size, raw, sizeof(size));
    g_live_bytes.fetch_sub(size, std::memory_order_relaxed);
    std::free(raw);
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

namespace {

using namespace ksa;

std::uint64_t alloc_calls_now() {
    return g_alloc_calls.load(std::memory_order_relaxed);
}

void BM_SimulatorRoundRobin(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    algo::FloodingKSet algorithm(n);
    std::size_t steps = 0;
    for (auto _ : state) {
        RoundRobinScheduler rr;
        Run run = execute_run(algorithm, n, distinct_inputs(n), {}, rr);
        steps += run.steps.size();
        benchmark::DoNotOptimize(run);
    }
    state.counters["steps/s"] = benchmark::Counter(
        static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorRoundRobin)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_SimulatorRandom(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    algo::FloodingKSet algorithm(n);
    std::size_t steps = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        RandomScheduler sched(seed++);
        Run run = execute_run(algorithm, n, distinct_inputs(n), {}, sched);
        steps += run.steps.size();
        benchmark::DoNotOptimize(run);
    }
    state.counters["steps/s"] = benchmark::Counter(
        static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorRandom)->Arg(4)->Arg(16);

void BM_FlpProtocolEndToEnd(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto algorithm = algo::make_flp_consensus(n);
    for (auto _ : state) {
        RoundRobinScheduler rr;
        Run run = execute_run(*algorithm, n, distinct_inputs(n), {}, rr);
        benchmark::DoNotOptimize(run);
    }
}
BENCHMARK(BM_FlpProtocolEndToEnd)->Arg(5)->Arg(9)->Arg(17)->Arg(25);

void BM_PaxosEndToEnd(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    algo::PaxosConsensus algorithm;
    FailurePlan plan;
    for (auto _ : state) {
        auto oracle = fd::make_benign_sigma_omega(n, plan, {1});
        RoundRobinScheduler rr;
        Run run = execute_run(algorithm, n, distinct_inputs(n), plan, rr,
                              oracle.get());
        benchmark::DoNotOptimize(run);
    }
}
BENCHMARK(BM_PaxosEndToEnd)->Arg(4)->Arg(8)->Arg(16);

void BM_FdQuery(benchmark::State& state) {
    FailurePlan plan;
    auto oracle =
        fd::make_partition_detector(16, 4, {{1, 2, 3, 4},
                                            {5, 6, 7, 8},
                                            {9, 10, 11, 12},
                                            {13, 14, 15, 16}},
                                    plan, {1, 5, 9, 13}, 100);
    QueryContext ctx;
    ctx.querier = 7;
    ctx.now = 1;
    for (auto _ : state) {
        ctx.now++;
        FdSample s = oracle->query(ctx);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_FdQuery);

void BM_TarjanScc(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    graph::Digraph g = graph::random_gnp(n, 4.0 / n, 99);
    for (auto _ : state) {
        graph::SccDecomposition dec(g);
        benchmark::DoNotOptimize(dec.num_components());
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_TarjanScc)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_SourceComponents(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    graph::Digraph g = graph::random_min_indegree(n, 3, 7);
    for (auto _ : state) {
        auto sources = graph::source_components(g);
        benchmark::DoNotOptimize(sources);
    }
}
BENCHMARK(BM_SourceComponents)->Arg(64)->Arg(256)->Arg(1024);

void BM_DigestComputation(benchmark::State& state) {
    auto algorithm = algo::make_flp_consensus(15);
    auto behavior = algorithm->make_behavior(1, 15, 1);
    StepInput input;  // first step: the stage-1 broadcast
    behavior->on_step(input);
    for (auto _ : state) {
        std::string d = behavior->state_digest();
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_DigestComputation);

// Allocations per explored state, fast vs reduced engine.  The ghost
// stepping + scratch-reuse design keeps this a small constant; the
// reduced engine must not regress it even though every candidate key
// additionally runs the absorption quotient (and, for symmetric
// instances, the renamed walks).
void BM_ExplorerAllocsPerState(benchmark::State& state) {
    const bool reduced = state.range(0) != 0;
    auto algorithm = algo::make_flp_kset(3, 1);
    core::ExploreConfig cfg;
    cfg.n = 3;
    cfg.inputs = distinct_inputs(3);
    cfg.k = 1;
    cfg.max_depth = 10;
    cfg.max_states = 400000;
    cfg.mode = reduced ? core::ExploreMode::kReduced
                       : core::ExploreMode::kFast;
    std::uint64_t allocs = 0;
    std::uint64_t states = 0;
    for (auto _ : state) {
        const std::uint64_t before = alloc_calls_now();
        core::ExploreResult r = core::explore_schedules(*algorithm, cfg);
        allocs += alloc_calls_now() - before;
        states += r.states_explored;
        benchmark::DoNotOptimize(r);
    }
    state.counters["allocs/state"] =
        states > 0 ? static_cast<double>(allocs) / static_cast<double>(states)
                   : 0.0;
}
BENCHMARK(BM_ExplorerAllocsPerState)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("reduced");

// Whole-process heap high-water mark of a spill-forced exploration,
// and the cross-check of the explorer's own accounting: the reported
// peak_resident_bytes (visited tier + delta window) must stay below
// what the heap actually peaked at.  Arg = frontier RAM budget in KB
// (0 = never spill), so the case family shows the spill knob trading
// resident bytes for disk traffic at fixed exploration results.
void BM_ExplorerPeakMemory(benchmark::State& state) {
    auto algorithm = algo::make_flp_kset(3, 1);
    core::ExploreConfig cfg;
    cfg.n = 3;
    cfg.inputs = distinct_inputs(3);
    cfg.k = 1;
    cfg.max_depth = 12;
    cfg.max_states = 400000;
    cfg.mode = core::ExploreMode::kFast;
    cfg.store.frontier_ram_bytes =
        static_cast<std::size_t>(state.range(0)) * 1024;
    double peak_mb = 0.0;
    double reported_mb = 0.0;
    std::uint64_t spilled = 0;
    for (auto _ : state) {
        // Rebase the high-water mark to the current live level so the
        // measurement covers this exploration alone.
        g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
        const std::uint64_t before =
            g_peak_bytes.load(std::memory_order_relaxed);
        core::ExploreResult r = core::explore_schedules(*algorithm, cfg);
        const std::uint64_t after =
            g_peak_bytes.load(std::memory_order_relaxed);
        peak_mb = static_cast<double>(after - before) / (1024.0 * 1024.0);
        reported_mb =
            static_cast<double>(r.peak_resident_bytes) / (1024.0 * 1024.0);
        spilled = r.spilled_records;
        benchmark::DoNotOptimize(r);
    }
    state.counters["heap_peak_mb"] = peak_mb;
    state.counters["store_peak_mb"] = reported_mb;
    state.counters["spilled"] = static_cast<double>(spilled);
}
BENCHMARK(BM_ExplorerPeakMemory)
    ->Arg(0)
    ->Arg(64)
    ->Arg(4)
    ->ArgName("frontier_kb");

// The reduced message digest must be allocation-free after tag-intern
// warm-up: the interner's thread-local front cache absorbs the lookup
// and the hasher runs on the stack.
void BM_ReducedMsgHashAllocs(benchmark::State& state) {
    Payload payload;
    payload.tag = "S2";
    payload.ints = {2, 41};
    payload.lists = {{1, 3}};
    core::reduced_msg_hash(1, payload);  // warm the interner caches
    std::uint64_t allocs = 0;
    std::uint64_t calls = 0;
    for (auto _ : state) {
        const std::uint64_t before = alloc_calls_now();
        Digest128 d = core::reduced_msg_hash(1, payload);
        allocs += alloc_calls_now() - before;
        ++calls;
        benchmark::DoNotOptimize(d);
    }
    state.counters["allocs/hash"] =
        calls > 0 ? static_cast<double>(allocs) / static_cast<double>(calls)
                  : 0.0;
}
BENCHMARK(BM_ReducedMsgHashAllocs);

void BM_IndistinguishabilityCheck(benchmark::State& state) {
    algo::FloodingKSet algorithm(8);
    RoundRobinScheduler rr1, rr2;
    Run a = execute_run(algorithm, 8, distinct_inputs(8), {}, rr1);
    Run b = execute_run(algorithm, 8, distinct_inputs(8), {}, rr2);
    std::vector<ProcessId> all;
    for (ProcessId p = 1; p <= 8; ++p) all.push_back(p);
    for (auto _ : state) {
        bool same = indistinguishable_for_all(a, b, all);
        benchmark::DoNotOptimize(same);
    }
}
BENCHMARK(BM_IndistinguishabilityCheck);

}  // namespace

BENCHMARK_MAIN();
