// M1 -- micro-benchmarks of the substrate: simulator step throughput
// under each scheduler, run-recording overhead, SCC scaling, failure
// detector query cost and digest computation.

#include <benchmark/benchmark.h>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "algo/paxos_consensus.hpp"
#include "fd/sources.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace {

using namespace ksa;

void BM_SimulatorRoundRobin(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    algo::FloodingKSet algorithm(n);
    std::size_t steps = 0;
    for (auto _ : state) {
        RoundRobinScheduler rr;
        Run run = execute_run(algorithm, n, distinct_inputs(n), {}, rr);
        steps += run.steps.size();
        benchmark::DoNotOptimize(run);
    }
    state.counters["steps/s"] = benchmark::Counter(
        static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorRoundRobin)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_SimulatorRandom(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    algo::FloodingKSet algorithm(n);
    std::size_t steps = 0;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        RandomScheduler sched(seed++);
        Run run = execute_run(algorithm, n, distinct_inputs(n), {}, sched);
        steps += run.steps.size();
        benchmark::DoNotOptimize(run);
    }
    state.counters["steps/s"] = benchmark::Counter(
        static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorRandom)->Arg(4)->Arg(16);

void BM_FlpProtocolEndToEnd(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto algorithm = algo::make_flp_consensus(n);
    for (auto _ : state) {
        RoundRobinScheduler rr;
        Run run = execute_run(*algorithm, n, distinct_inputs(n), {}, rr);
        benchmark::DoNotOptimize(run);
    }
}
BENCHMARK(BM_FlpProtocolEndToEnd)->Arg(5)->Arg(9)->Arg(17)->Arg(25);

void BM_PaxosEndToEnd(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    algo::PaxosConsensus algorithm;
    FailurePlan plan;
    for (auto _ : state) {
        auto oracle = fd::make_benign_sigma_omega(n, plan, {1});
        RoundRobinScheduler rr;
        Run run = execute_run(algorithm, n, distinct_inputs(n), plan, rr,
                              oracle.get());
        benchmark::DoNotOptimize(run);
    }
}
BENCHMARK(BM_PaxosEndToEnd)->Arg(4)->Arg(8)->Arg(16);

void BM_FdQuery(benchmark::State& state) {
    FailurePlan plan;
    auto oracle =
        fd::make_partition_detector(16, 4, {{1, 2, 3, 4},
                                            {5, 6, 7, 8},
                                            {9, 10, 11, 12},
                                            {13, 14, 15, 16}},
                                    plan, {1, 5, 9, 13}, 100);
    QueryContext ctx;
    ctx.querier = 7;
    ctx.now = 1;
    for (auto _ : state) {
        ctx.now++;
        FdSample s = oracle->query(ctx);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_FdQuery);

void BM_TarjanScc(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    graph::Digraph g = graph::random_gnp(n, 4.0 / n, 99);
    for (auto _ : state) {
        graph::SccDecomposition dec(g);
        benchmark::DoNotOptimize(dec.num_components());
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_TarjanScc)->Range(64, 4096)->Complexity(benchmark::oN);

void BM_SourceComponents(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    graph::Digraph g = graph::random_min_indegree(n, 3, 7);
    for (auto _ : state) {
        auto sources = graph::source_components(g);
        benchmark::DoNotOptimize(sources);
    }
}
BENCHMARK(BM_SourceComponents)->Arg(64)->Arg(256)->Arg(1024);

void BM_DigestComputation(benchmark::State& state) {
    auto algorithm = algo::make_flp_consensus(15);
    auto behavior = algorithm->make_behavior(1, 15, 1);
    StepInput input;  // first step: the stage-1 broadcast
    behavior->on_step(input);
    for (auto _ : state) {
        std::string d = behavior->state_digest();
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_DigestComputation);

void BM_IndistinguishabilityCheck(benchmark::State& state) {
    algo::FloodingKSet algorithm(8);
    RoundRobinScheduler rr1, rr2;
    Run a = execute_run(algorithm, 8, distinct_inputs(8), {}, rr1);
    Run b = execute_run(algorithm, 8, distinct_inputs(8), {}, rr2);
    std::vector<ProcessId> all;
    for (ProcessId p = 1; p <= 8; ++p) all.push_back(p);
    for (auto _ : state) {
        bool same = indistinguishable_for_all(a, b, all);
        benchmark::DoNotOptimize(same);
    }
}
BENCHMARK(BM_IndistinguishabilityCheck);

}  // namespace

BENCHMARK_MAIN();
