// M2 -- bounded exhaustive model checking of small instances.
//
// The dual of the impossibility theorems, executed: for a fixed
// algorithm and tiny n, enumerate EVERY adversarial schedule (up to the
// bound) and report either a violation witness (impossible side: some
// schedule breaks k-agreement) or exhaustive absence of violations
// (possible side: a verified small-case instance of Theorem 8's
// possibility half for the given crash plan).

#include <iomanip>
#include <iostream>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "core/bounds.hpp"
#include "core/explorer.hpp"
#include "sim/system.hpp"

int main() {
    using namespace ksa;
    std::cout << "M2: bounded exhaustive schedule exploration\n\n";
    std::cout << std::left << std::setw(26) << "algorithm" << std::right
              << std::setw(4) << "n" << std::setw(4) << "k" << std::setw(7)
              << "dead" << std::setw(10) << "states" << std::setw(9)
              << "exhst" << std::setw(11) << "violation" << std::setw(12)
              << "expected\n";

    struct Case {
        std::unique_ptr<Algorithm> algorithm;
        int n;
        int k;
        std::vector<ProcessId> dead;
        int depth;
        bool expect_violation;
        const char* why;
    };
    std::vector<Case> cases;
    // Impossible side: flooding is no consensus protocol (k=1, f=1).
    cases.push_back({std::make_unique<algo::FloodingKSet>(2), 3, 1, {}, 10,
                     true, "flooding != consensus"});
    // Flooding does achieve 2-set agreement at n=3, f=1: no schedule
    // reaches 3 distinct decisions while respecting the threshold.
    cases.push_back({std::make_unique<algo::FloodingKSet>(2), 3, 2, {}, 10,
                     false, "flooding = (f+1)-set"});
    // Possible side: the FLP protocol with one initial crash stays
    // consensus under EVERY schedule (Theorem 8, k=1, n=3, f=1).
    cases.push_back({algo::make_flp_kset(3, 1), 3, 1, {3}, 14, false,
                     "Thm 8 possibility"});
    cases.push_back({algo::make_flp_kset(3, 1), 3, 1, {}, 14, false,
                     "Thm 8, no crash"});
    // k-set generalization: L=2 on n=4 bounds decisions by 2.
    cases.push_back({algo::make_flp_kset(4, 2), 4, 2, {1, 2}, 12, false,
                     "Thm 8, k=2"});
    // Trivial protocol: n distinct decisions immediately.
    cases.push_back({std::make_unique<algo::TrivialWaitFree>(), 3, 2, {}, 4,
                     true, "n-set only"});

    bool all = true;
    for (const Case& c : cases) {
        core::ExploreConfig cfg;
        cfg.n = c.n;
        cfg.inputs = distinct_inputs(c.n);
        cfg.plan.set_initially_dead(c.dead);
        cfg.k = c.k;
        cfg.max_depth = c.depth;
        cfg.max_states = 400000;
        core::ExploreResult r = core::explore_schedules(*c.algorithm, cfg);
        const bool as_expected = r.violation_found == c.expect_violation;
        all = all && as_expected && (r.exhaustive || r.violation_found);
        std::cout << std::left << std::setw(26) << c.algorithm->name()
                  << std::right << std::setw(4) << c.n << std::setw(4) << c.k
                  << std::setw(7) << c.dead.size() << std::setw(10)
                  << r.states_explored << std::setw(9)
                  << (r.exhaustive ? "yes" : "cut") << std::setw(11)
                  << (r.violation_found ? "FOUND" : "none") << std::setw(12)
                  << (as_expected ? "matches" : "MISMATCH") << "  ["
                  << c.why << "]\n";
    }
    std::cout << "\n"
              << (all ? "every verdict matches the theory"
                      : "MISMATCH AGAINST THEORY")
              << "\n";
    return all ? 0 : 1;
}
