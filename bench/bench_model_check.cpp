// M2 -- bounded exhaustive model checking of small instances.
//
// The dual of the impossibility theorems, executed: for a fixed
// algorithm and tiny n, enumerate EVERY adversarial schedule (up to the
// bound) and report either a violation witness (impossible side: some
// schedule breaks k-agreement) or exhaustive absence of violations
// (possible side: a verified small-case instance of Theorem 8's
// possibility half for the given crash plan).
//
// Second half: the engine comparison.  Every case is explored by all
// three engines -- the pre-snapshot replay baseline, the snapshot
// reference mode and the snapshot fast mode (1 thread and N threads) --
// with wall times and cross-engine agreement written to a
// BENCH_explorer.json artifact (schema: doc/performance.md).  This is
// the measurement backing the snapshot engine's speedup claim; the
// baseline is kept in-tree precisely so the comparison stays honest.
//
// Usage: bench_model_check [--out FILE] [--threads N] [--quick]
//                          [--check FILE] [--deep]
//   --quick caps depths for the CI smoke (label `perf`); the committed
//   BENCH_explorer.json comes from a full run.
//   --check re-runs the full-depth cases and compares them against a
//   committed BENCH_explorer.json: every deterministic count must match
//   exactly, wall times must stay within 3x of the committed numbers
//   (sub-threshold timings are skipped -- timer noise, not regressions),
//   and the flagship's >= 2x reduction ratio is re-asserted.  This is
//   the bench-regression gate ctest runs under the `perf` label.
//   --deep appends the out-of-core flagship row: an exhaustive n=5
//   initial-clique exploration past 10^7 canonical states, run under an
//   enforced 64 MB frontier ceiling so the delta store demonstrably
//   spills (doc/performance.md §6).  It takes tens of minutes and is
//   meant for regenerating the committed artifact, not for CI; --check
//   ignores deep rows (their counts are pinned by the committed entry
//   itself, their runtime by nobody).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "bench_util.hpp"
#include "core/bounds.hpp"
#include "core/explorer.hpp"
#include "exec/task_scheduler.hpp"
#include "sim/system.hpp"

namespace {

using namespace ksa;

/// Cross-engine agreement on everything the explorer reports (the
/// witness schedule is compared step by step).
bool same_result(const core::ExploreResult& a, const core::ExploreResult& b) {
    if (a.states_explored != b.states_explored) return false;
    if (a.schedules_expanded != b.schedules_expanded) return false;
    if (a.exhaustive != b.exhaustive) return false;
    if (a.violation_found != b.violation_found) return false;
    if (a.quiescent_outcomes != b.quiescent_outcomes) return false;
    if (a.reachable_decision_sets != b.reachable_decision_sets) return false;
    if (a.witness.size() != b.witness.size()) return false;
    for (std::size_t i = 0; i < a.witness.size(); ++i) {
        if (a.witness[i].process != b.witness[i].process) return false;
        if (a.witness[i].deliver != b.witness[i].deliver) return false;
        if (a.witness[i].deliver_all != b.witness[i].deliver_all) return false;
    }
    return true;
}

/// Agreement criterion for the reduced engine: it explores a quotient,
/// so only the three observables are comparable.  On an exhaustive full
/// run they must match exactly; on a truncated full run (the --quick
/// smoke caps depths) the reduced engine may legitimately see MORE --
/// everything the truncated run saw must still be contained.
bool reduced_covers(const core::ExploreResult& full,
                    const core::ExploreResult& red) {
    if (full.exhaustive)
        return full.violation_found == red.violation_found &&
               full.quiescent_outcomes == red.quiescent_outcomes &&
               full.reachable_decision_sets == red.reachable_decision_sets;
    if (full.violation_found && !red.violation_found) return false;
    return std::includes(red.quiescent_outcomes.begin(),
                         red.quiescent_outcomes.end(),
                         full.quiescent_outcomes.begin(),
                         full.quiescent_outcomes.end()) &&
           std::includes(red.reachable_decision_sets.begin(),
                         red.reachable_decision_sets.end(),
                         full.reachable_decision_sets.begin(),
                         full.reachable_decision_sets.end());
}

// ---------------------------------------------------------------------
// --check mode: field scanner for the committed BENCH_explorer.json.
//
// The file is produced by this very binary through BenchReport, whose
// output shape is fixed: one flat entry object per line, `"key": value`
// pairs with numeric / boolean / quoted-string values.  That contract
// (doc/performance.md, bench_util.hpp) lets the regression gate re-read
// its own artifact with a few lines of string scanning instead of
// pulling a JSON library into the tree.  The needle includes the
// opening quote, so `"states"` never matches inside
// `"canonical_states"`.

/// Extracts the raw (unquoted-value) text of `key` from one entry line.
bool scan_raw(const std::string& line, const std::string& key,
              std::string& out) {
    const std::string needle = "\"" + key + "\": ";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos) return false;
    const std::size_t start = pos + needle.size();
    const std::size_t end = line.find_first_of(",}", start);
    if (end == std::string::npos) return false;
    out = line.substr(start, end - start);
    return true;
}

/// Extracts a numeric field.
bool scan_num(const std::string& line, const std::string& key, double& out) {
    std::string raw;
    if (!scan_raw(line, key, raw)) return false;
    out = std::strtod(raw.c_str(), nullptr);
    return true;
}

/// Extracts a boolean field.
bool scan_bool(const std::string& line, const std::string& key, bool& out) {
    std::string raw;
    if (!scan_raw(line, key, raw)) return false;
    out = raw == "true";
    return true;
}

/// Extracts a quoted string field (used for "name"; entry names may
/// contain commas, so this stops at the closing quote, not at `,`).
bool scan_str(const std::string& line, const std::string& key,
              std::string& out) {
    const std::string needle = "\"" + key + "\": \"";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos) return false;
    const std::size_t start = pos + needle.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos) return false;
    out = line.substr(start, end - start);
    return true;
}

/// Timing tolerance of the regression gate: a current wall time may be
/// at most this multiple of the committed one.  3x absorbs machine and
/// load variation while still catching an accidentally quadratic hot
/// path or a lost reduction axis.
constexpr double kTimeToleranceX = 3.0;
/// Committed timings below this are not enforced: for sub-5ms cases a
/// cold cache or one scheduler hiccup exceeds 3x without any real
/// regression, and the exact state counts already pin their behaviour.
constexpr double kTimeFloorMs = 5.0;

}  // namespace

int main(int argc, char** argv) {
    using namespace ksa;

    std::string out_path;
    std::string check_path;
    int threads = exec::hardware_threads();
    bool quick = false;
    bool deep = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc)
            check_path = argv[++i];
        else if (std::strcmp(argv[i], "--deep") == 0)
            deep = true;
        else {
            std::cerr << "usage: bench_model_check [--out FILE] "
                         "[--threads N] [--quick] [--check FILE] [--deep]\n";
            return 2;
        }
    }
    // The regression gate compares full-depth counts; --quick would
    // change every number it checks.
    if (!check_path.empty()) quick = false;

    if (check_path.empty()) {
        std::cout << "M2: bounded exhaustive schedule exploration\n\n";
        std::cout << std::left << std::setw(26) << "algorithm" << std::right
                  << std::setw(4) << "n" << std::setw(4) << "k" << std::setw(7)
                  << "dead" << std::setw(10) << "states" << std::setw(9)
                  << "exhst" << std::setw(11) << "violation" << std::setw(12)
                  << "expected\n";
    }

    struct Case {
        std::unique_ptr<Algorithm> algorithm;
        int n;
        int k;
        std::vector<ProcessId> dead;
        int depth;
        bool expect_violation;
        /// Timing repetitions: sub-millisecond cases repeat the
        /// exploration and report the mean, so the engine comparison is
        /// not dominated by timer resolution.
        int reps;
        const char* why;
        /// Uniform inputs (all processes propose the same value) open
        /// the full symmetric group for the reduced engine's symmetry
        /// axis; the default distinct inputs leave it trivial.
        bool uniform_inputs = false;
    };
    std::vector<Case> cases;
    // Impossible side: flooding is no consensus protocol (k=1, f=1).
    cases.push_back({std::make_unique<algo::FloodingKSet>(2), 3, 1, {}, 10,
                     true, 5, "flooding != consensus"});
    // Flooding does achieve 2-set agreement at n=3, f=1: no schedule
    // reaches 3 distinct decisions while respecting the threshold.
    cases.push_back({std::make_unique<algo::FloodingKSet>(2), 3, 2, {}, 10,
                     false, 5, "flooding = (f+1)-set"});
    // Possible side: the FLP protocol with one initial crash stays
    // consensus under EVERY schedule (Theorem 8, k=1, n=3, f=1).
    cases.push_back({algo::make_flp_kset(3, 1), 3, 1, {3}, 14, false, 30,
                     "Thm 8 possibility"});
    cases.push_back({algo::make_flp_kset(3, 1), 3, 1, {}, 14, false, 3,
                     "Thm 8, no crash"});
    // k-set generalization: L=2 on n=4 bounds decisions by 2.
    cases.push_back({algo::make_flp_kset(4, 2), 4, 2, {1, 2}, 12, false, 30,
                     "Thm 8, k=2"});
    // Trivial protocol: n distinct decisions immediately.
    cases.push_back({std::make_unique<algo::TrivialWaitFree>(), 3, 2, {}, 4,
                     true, 100, "n-set only"});
    // Symmetric instance: same protocol, uniform inputs.  The full
    // engines see the identical 3430-state space (they key on ids);
    // the reduced engine's symmetry axis gets the whole S_3 to quotient
    // by and collapses it by an order of magnitude.
    cases.push_back({algo::make_flp_kset(3, 1), 3, 1, {}, 14, false, 3,
                     "Thm 8, uniform inputs", true});

    auto config_for = [&](const Case& c) {
        core::ExploreConfig cfg;
        cfg.n = c.n;
        cfg.inputs = c.uniform_inputs ? std::vector<Value>(c.n, 1)
                                      : distinct_inputs(c.n);
        cfg.plan.set_initially_dead(c.dead);
        cfg.k = c.k;
        cfg.max_depth = quick ? std::min(c.depth, 8) : c.depth;
        cfg.max_states = 400000;
        return cfg;
    };

    // ------------------------------------------------------------------
    // --check: bench-regression gate against a committed report.
    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::cerr << "cannot open " << check_path << "\n";
            return 2;
        }
        std::map<std::string, std::string> committed;  // name -> entry line
        std::string line;
        while (std::getline(in, line)) {
            std::string name;
            if (scan_str(line, "name", name)) committed[name] = line;
        }

        std::cout << "bench regression check against " << check_path << "\n"
                  << "counts must match the committed report exactly; "
                  << "timings within " << kTimeToleranceX << "x (committed >= "
                  << kTimeFloorMs << " ms only)\n\n";
        std::cout << std::left << std::setw(26) << "case" << std::right
                  << std::setw(10) << "states" << std::setw(10) << "canon"
                  << std::setw(10) << "fast ms" << std::setw(10) << "red ms"
                  << std::setw(8) << "gate\n";

        bool ok = true;
        for (const Case& c : cases) {
            const auto it = committed.find(c.why);
            if (it == committed.end()) {
                std::cout << "[" << c.why << "] MISSING from committed report\n";
                ok = false;
                continue;
            }
            const std::string& entry = it->second;
            bool case_ok = true;
            auto fail = [&](const std::string& what) {
                std::cout << "[" << c.why << "] REGRESSION: " << what << "\n";
                case_ok = false;
            };

            core::ExploreConfig cfg = config_for(c);
            cfg.threads = 1;
            core::ExploreResult fast_r, red_r, red_mt_r;
            // Best-of-3 wall times: the gate compares against committed
            // single-machine numbers, so take the least noisy sample.
            double fast_ms = 1e300, reduced_ms = 1e300;
            double reduced_mt_ms = 1e300;
            cfg.mode = core::ExploreMode::kFast;
            for (int r = 0; r < 3; ++r)
                fast_ms = std::min(fast_ms, ksa::bench::time_call_ms([&] {
                              fast_r = core::explore_schedules(*c.algorithm,
                                                               cfg);
                          }));
            cfg.mode = core::ExploreMode::kReduced;
            for (int r = 0; r < 3; ++r)
                reduced_ms =
                    std::min(reduced_ms, ksa::bench::time_call_ms([&] {
                                 red_r = core::explore_schedules(*c.algorithm,
                                                                 cfg);
                             }));
            cfg.threads = threads;
            for (int r = 0; r < 3; ++r)
                reduced_mt_ms =
                    std::min(reduced_mt_ms,
                             ksa::bench::time_call_ms([&] {
                                 red_mt_r = core::explore_schedules(
                                     *c.algorithm, cfg);
                             }));

            // Deterministic counts: exact match, no tolerance.
            const std::pair<const char*, std::uint64_t> counts[] = {
                {"states", fast_r.states_explored},
                {"expansions", fast_r.schedules_expanded},
                {"canonical_states", red_r.states_explored},
                {"reduced_expansions", red_r.schedules_expanded},
                {"por_skips", red_r.por_skips},
                {"dedup_hits", red_r.dedup_hits},
                // Store-tier counters are part of the determinism
                // contract (visited_store.hpp): pure functions of the
                // key stream, thread-count invariant, so they are
                // pinned exactly like the state counts.
                {"filter_definite_new", red_r.filter_definite_new},
                {"filter_false_positives", red_r.filter_false_positives},
                {"spilled_records", red_r.spilled_records},
            };
            for (const auto& [key, got] : counts) {
                double want = 0;
                if (!scan_num(entry, key, want))
                    fail(std::string(key) + " missing from committed entry");
                else if (static_cast<double>(got) != want)
                    fail(std::string(key) + " = " + std::to_string(got) +
                         ", committed " + std::to_string(want));
            }
            bool want_violation = false;
            if (!scan_bool(entry, "violation", want_violation))
                fail("violation missing from committed entry");
            else if (fast_r.violation_found != want_violation)
                fail("violation verdict flipped");
            if (!reduced_covers(fast_r, red_r))
                fail("reduced engine no longer covers the fast engine");
            if (!same_result(red_r, red_mt_r))
                fail("reduced engine differs across thread counts");

            // Timing regression: current <= 3x committed, above the floor.
            const std::pair<const char*, double> timings[] = {
                {"fast_ms", fast_ms},
                {"reduced_ms", reduced_ms},
                {"reduced_mt_ms", reduced_mt_ms},
            };
            for (const auto& [key, got_ms] : timings) {
                double want_ms = 0;
                if (!scan_num(entry, key, want_ms))
                    fail(std::string(key) + " missing from committed entry");
                else if (want_ms >= kTimeFloorMs &&
                         got_ms > kTimeToleranceX * want_ms)
                    fail(std::string(key) + " = " + std::to_string(got_ms) +
                         " ms, committed " + std::to_string(want_ms) +
                         " ms (limit " +
                         std::to_string(kTimeToleranceX * want_ms) + " ms)");
            }

            // The flagship acceptance criterion stays pinned: wherever
            // the committed report claims a >= 2x reduction, a fresh run
            // must still achieve one.
            double want_ratio = 0;
            if (scan_num(entry, "reduction_ratio", want_ratio) &&
                want_ratio >= 2.0) {
                const double got_ratio =
                    red_r.schedules_expanded > 0
                        ? static_cast<double>(fast_r.schedules_expanded) /
                              static_cast<double>(red_r.schedules_expanded)
                        : 0.0;
                if (got_ratio < 2.0)
                    fail("reduction ratio fell below 2x (got " +
                         std::to_string(got_ratio) + ")");
            }

            std::cout << std::left << std::setw(26) << c.why << std::right
                      << std::setw(10) << fast_r.states_explored
                      << std::setw(10) << red_r.states_explored
                      << std::setw(10) << std::fixed << std::setprecision(1)
                      << fast_ms << std::setw(10) << reduced_ms
                      << std::setw(8) << (case_ok ? "ok" : "FAIL") << "\n";
            std::cout.unsetf(std::ios::fixed);
            ok = ok && case_ok;
        }
        std::cout << "\n"
                  << (ok ? "bench regression check passed"
                         : "BENCH REGRESSION DETECTED")
                  << "\n";
        return ok ? 0 : 1;
    }

    bool all = true;
    for (const Case& c : cases) {
        core::ExploreConfig cfg = config_for(c);
        cfg.threads = threads;
        core::ExploreResult r = core::explore_schedules(*c.algorithm, cfg);
        // Quick mode caps depths, so exhaustiveness and violation
        // expectations (which assume the full depth) are not enforced.
        const bool as_expected =
            quick || r.violation_found == c.expect_violation;
        all = all && as_expected &&
              (quick || r.exhaustive || r.violation_found);
        std::cout << std::left << std::setw(26) << c.algorithm->name()
                  << std::right << std::setw(4) << c.n << std::setw(4) << c.k
                  << std::setw(7) << c.dead.size() << std::setw(10)
                  << r.states_explored << std::setw(9)
                  << (r.exhaustive ? "yes" : "cut") << std::setw(11)
                  << (r.violation_found ? "FOUND" : "none") << std::setw(12)
                  << (as_expected ? "matches" : "MISMATCH") << "  ["
                  << c.why << "]\n";
    }
    std::cout << "\n"
              << (all ? "every verdict matches the theory"
                      : "MISMATCH AGAINST THEORY")
              << "\n";

    // ------------------------------------------------------------------
    // Engine comparison.
    std::cout << "\nengine comparison (replay baseline vs snapshot engine, "
              << threads << " threads)\n\n";
    std::cout << std::left << std::setw(26) << "case" << std::right
              << std::setw(7) << "depth" << std::setw(10) << "states"
              << std::setw(13) << "baseline ms" << std::setw(10) << "ref ms"
              << std::setw(10) << "fast ms" << std::setw(11) << "fast-N ms"
              << std::setw(10) << "speedup" << std::setw(8) << "agree\n";

    ksa::bench::BenchReport report("explorer");
    bool engines_agree = true;
    /// Reduction-engine rows, collected during the main loop and
    /// printed as a dedicated table after it.
    struct ReducedRow {
        const char* why;
        std::size_t fast_expansions;
        std::size_t canonical_states;
        std::size_t por_skips;
        std::size_t dedup_hits;
        double reduced_ms;
        double reduced_mt_ms;
        double fast_ms;
        double ratio;
        bool covers;
    };
    std::vector<ReducedRow> reduced_rows;
    for (const Case& c : cases) {
        core::ExploreConfig cfg = config_for(c);
        const int reps = quick ? 1 : c.reps;

        core::ExploreResult baseline_r, ref_r, fast_r, fast_mt_r;
        cfg.mode = core::ExploreMode::kReplayBaseline;
        const double baseline_ms =
            ksa::bench::time_call_ms([&] {
                for (int r = 0; r < reps; ++r)
                    baseline_r = core::explore_schedules(*c.algorithm, cfg);
            }) /
            reps;
        cfg.mode = core::ExploreMode::kReference;
        cfg.threads = 1;
        const double ref_ms =
            ksa::bench::time_call_ms([&] {
                for (int r = 0; r < reps; ++r)
                    ref_r = core::explore_schedules(*c.algorithm, cfg);
            }) /
            reps;
        cfg.mode = core::ExploreMode::kFast;
        cfg.threads = 1;
        const double fast_ms =
            ksa::bench::time_call_ms([&] {
                for (int r = 0; r < reps; ++r)
                    fast_r = core::explore_schedules(*c.algorithm, cfg);
            }) /
            reps;
        cfg.threads = threads;
        const double fast_mt_ms =
            ksa::bench::time_call_ms([&] {
                for (int r = 0; r < reps; ++r)
                    fast_mt_r = core::explore_schedules(*c.algorithm, cfg);
            }) /
            reps;

        core::ExploreResult red_r, red_mt_r;
        cfg.mode = core::ExploreMode::kReduced;
        cfg.threads = 1;
        const double reduced_ms =
            ksa::bench::time_call_ms([&] {
                for (int r = 0; r < reps; ++r)
                    red_r = core::explore_schedules(*c.algorithm, cfg);
            }) /
            reps;
        cfg.threads = threads;
        const double reduced_mt_ms =
            ksa::bench::time_call_ms([&] {
                for (int r = 0; r < reps; ++r)
                    red_mt_r = core::explore_schedules(*c.algorithm, cfg);
            }) /
            reps;

        // Thread-count identity inside the reduced engine is exact --
        // same quotient, same counts, same witness -- unlike the
        // quotient-vs-full comparison below, which only shares
        // observables.
        const bool red_mt_ok = same_result(red_r, red_mt_r);
        const bool red_ok = reduced_covers(fast_r, red_r) && red_mt_ok;
        const double red_ratio =
            red_r.schedules_expanded > 0
                ? static_cast<double>(fast_r.schedules_expanded) /
                      static_cast<double>(red_r.schedules_expanded)
                : 0.0;
        reduced_rows.push_back({c.why, fast_r.schedules_expanded,
                                red_r.states_explored, red_r.por_skips,
                                red_r.dedup_hits, reduced_ms, reduced_mt_ms,
                                fast_ms, red_ratio, red_ok});

        const bool agree = same_result(baseline_r, ref_r) &&
                           same_result(baseline_r, fast_r) &&
                           same_result(baseline_r, fast_mt_r) && red_ok;
        engines_agree = engines_agree && agree;
        const double best_ms = std::min(fast_ms, fast_mt_ms);
        const double speedup = best_ms > 0 ? baseline_ms / best_ms : 0.0;

        std::cout << std::left << std::setw(26) << c.why << std::right
                  << std::setw(7) << cfg.max_depth << std::setw(10)
                  << fast_r.states_explored << std::setw(13) << std::fixed
                  << std::setprecision(1) << baseline_ms << std::setw(10)
                  << ref_ms << std::setw(10) << fast_ms << std::setw(11)
                  << fast_mt_ms << std::setw(9) << speedup << "x"
                  << std::setw(8) << (agree ? "yes" : "NO") << "\n";
        std::cout.unsetf(std::ios::fixed);

        report.entry(c.why)
            .str("algorithm", c.algorithm->name())
            .num("n", c.n)
            .num("k", c.k)
            .num("dead", c.dead.size())
            .num("max_depth", cfg.max_depth)
            .num("timing_reps", reps)
            .num("states", fast_r.states_explored)
            .num("expansions", fast_r.schedules_expanded)
            .boolean("violation", fast_r.violation_found)
            .num("threads", threads)
            .num("baseline_ms", baseline_ms)
            .num("reference_ms", ref_ms)
            .num("fast_ms", fast_ms)
            .num("fast_mt_ms", fast_mt_ms)
            .num("speedup_vs_baseline", speedup)
            .boolean("engines_agree", agree)
            .num("reduced_ms", reduced_ms)
            .num("reduced_mt_ms", reduced_mt_ms)
            .num("canonical_states", red_r.states_explored)
            .num("reduced_expansions", red_r.schedules_expanded)
            .num("por_skips", red_r.por_skips)
            .num("dedup_hits", red_r.dedup_hits)
            .num("reduction_ratio", red_ratio)
            .boolean("reduced_agrees", red_ok)
            // Out-of-core store observability (deterministic tallies;
            // replay_steps / spill_reads are timing-dependent and
            // deliberately excluded, like steal counts).
            .num("store_shards", red_r.store_shards)
            .num("filter_definite_new", red_r.filter_definite_new)
            .num("filter_false_positives", red_r.filter_false_positives)
            .num("spilled_records", red_r.spilled_records)
            .num("spill_bytes", red_r.spill_bytes)
            .num("peak_resident_kb", red_r.peak_resident_bytes / 1024);
    }
    // ------------------------------------------------------------------
    // Reduction engine: quotient sizes and agreement (observables only;
    // counts are SUPPOSED to shrink).
    std::cout << "\nreduction engine (kReduced vs kFast; red-N = " << threads
              << " threads)\n\n";
    std::cout << std::left << std::setw(26) << "case" << std::right
              << std::setw(10) << "fast exp" << std::setw(10) << "red exp"
              << std::setw(8) << "ratio" << std::setw(10) << "por skip"
              << std::setw(9) << "dedup" << std::setw(10) << "fast ms"
              << std::setw(9) << "red ms" << std::setw(10) << "red-N ms"
              << std::setw(8) << "agree\n";
    for (const ReducedRow& row : reduced_rows) {
        std::cout << std::left << std::setw(26) << row.why << std::right
                  << std::setw(10) << row.fast_expansions << std::setw(10)
                  << row.canonical_states << std::setw(7) << std::fixed
                  << std::setprecision(1) << row.ratio << "x" << std::setw(10)
                  << row.por_skips << std::setw(9) << row.dedup_hits
                  << std::setw(10) << row.fast_ms << std::setw(9)
                  << row.reduced_ms << std::setw(10) << row.reduced_mt_ms
                  << std::setw(8) << (row.covers ? "yes" : "NO") << "\n";
        std::cout.unsetf(std::ios::fixed);
    }

    std::cout << "\n"
              << (engines_agree
                      ? "all engines agree bit-identically on every case"
                      : "ENGINE DISAGREEMENT -- the snapshot engine is wrong")
              << "\n";

    // ------------------------------------------------------------------
    // --deep: the out-of-core flagship row.  An n=5 initial-clique
    // instance whose quotient space passes 10^7 canonical states before
    // exhausting -- two orders of magnitude past what the in-RAM
    // frontier could hold -- explored under an enforced 64 MB frontier
    // ceiling so the run demonstrably spills and re-materializes
    // (doc/performance.md §6).  Single repetition (it runs for tens of
    // minutes); the deterministic counts in the committed entry are the
    // regression anchor, not the wall time.
    bool deep_ok = true;
    if (deep && check_path.empty()) {
        std::cout << "\nout-of-core flagship (--deep): n=5 initial clique, "
                  << "64 MB frontier ceiling\n";
        auto algorithm = algo::make_flp_kset(5, 1);
        core::ExploreConfig cfg;
        cfg.n = 5;
        cfg.inputs = distinct_inputs(5);
        cfg.k = 1;
        cfg.max_depth = 20;
        cfg.max_states = 100u * 1000 * 1000;
        cfg.mode = core::ExploreMode::kReduced;
        cfg.threads = threads;
        cfg.store.frontier_ram_bytes = std::size_t(64) << 20;
        core::ExploreResult r;
        const double deep_ms = ksa::bench::time_call_ms(
            [&] { r = core::explore_schedules(*algorithm, cfg); });
        deep_ok = r.exhaustive && !r.violation_found &&
                  r.states_explored >= 10u * 1000 * 1000;
        std::cout << "  canonical states " << r.states_explored
                  << ", expansions " << r.schedules_expanded << ", "
                  << (r.exhaustive ? "exhaustive" : "TRUNCATED") << ", "
                  << (r.violation_found ? "VIOLATION" : "no violation")
                  << "\n  spilled " << r.spilled_records << " records ("
                  << r.spill_bytes / (1024 * 1024) << " MB), peak resident "
                  << r.peak_resident_bytes / (1024 * 1024) << " MB, "
                  << std::fixed << std::setprecision(0) << deep_ms / 1000.0
                  << " s\n"
                  << (deep_ok ? "  deep row ok"
                              : "  DEEP ROW FAILED ACCEPTANCE")
                  << "\n";
        std::cout.unsetf(std::ios::fixed);
        report.entry("out-of-core, n=5 deep")
            .str("algorithm", algorithm->name())
            .num("n", 5)
            .num("k", 1)
            .num("dead", 0)
            .num("max_depth", cfg.max_depth)
            .num("timing_reps", 1)
            .num("threads", threads)
            .boolean("violation", r.violation_found)
            .boolean("exhaustive", r.exhaustive)
            .num("canonical_states", r.states_explored)
            .num("reduced_expansions", r.schedules_expanded)
            .num("por_skips", r.por_skips)
            .num("dedup_hits", r.dedup_hits)
            .num("reduced_ms", deep_ms)
            .num("store_shards", r.store_shards)
            .num("filter_definite_new", r.filter_definite_new)
            .num("filter_false_positives", r.filter_false_positives)
            .num("frontier_ram_mb", cfg.store.frontier_ram_bytes >> 20)
            .num("spilled_records", r.spilled_records)
            .num("spill_bytes", r.spill_bytes)
            .num("peak_resident_kb", r.peak_resident_bytes / 1024);
    }

    if (!out_path.empty()) report.write(out_path);
    return all && engines_agree && deep_ok ? 0 : 1;
}
