// M2 -- bounded exhaustive model checking of small instances.
//
// The dual of the impossibility theorems, executed: for a fixed
// algorithm and tiny n, enumerate EVERY adversarial schedule (up to the
// bound) and report either a violation witness (impossible side: some
// schedule breaks k-agreement) or exhaustive absence of violations
// (possible side: a verified small-case instance of Theorem 8's
// possibility half for the given crash plan).
//
// Second half: the engine comparison.  Every case is explored by all
// three engines -- the pre-snapshot replay baseline, the snapshot
// reference mode and the snapshot fast mode (1 thread and N threads) --
// with wall times and cross-engine agreement written to a
// BENCH_explorer.json artifact (schema: doc/performance.md).  This is
// the measurement backing the snapshot engine's speedup claim; the
// baseline is kept in-tree precisely so the comparison stays honest.
//
// Usage: bench_model_check [--out FILE] [--threads N] [--quick]
//   --quick caps depths for the CI smoke (label `perf`); the committed
//   BENCH_explorer.json comes from a full run.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "bench_util.hpp"
#include "core/bounds.hpp"
#include "core/explorer.hpp"
#include "exec/thread_pool.hpp"
#include "sim/system.hpp"

namespace {

using namespace ksa;

/// Cross-engine agreement on everything the explorer reports (the
/// witness schedule is compared step by step).
bool same_result(const core::ExploreResult& a, const core::ExploreResult& b) {
    if (a.states_explored != b.states_explored) return false;
    if (a.schedules_expanded != b.schedules_expanded) return false;
    if (a.exhaustive != b.exhaustive) return false;
    if (a.violation_found != b.violation_found) return false;
    if (a.quiescent_outcomes != b.quiescent_outcomes) return false;
    if (a.reachable_decision_sets != b.reachable_decision_sets) return false;
    if (a.witness.size() != b.witness.size()) return false;
    for (std::size_t i = 0; i < a.witness.size(); ++i) {
        if (a.witness[i].process != b.witness[i].process) return false;
        if (a.witness[i].deliver != b.witness[i].deliver) return false;
        if (a.witness[i].deliver_all != b.witness[i].deliver_all) return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ksa;

    std::string out_path;
    int threads = exec::hardware_threads();
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else {
            std::cerr << "usage: bench_model_check [--out FILE] "
                         "[--threads N] [--quick]\n";
            return 2;
        }
    }

    std::cout << "M2: bounded exhaustive schedule exploration\n\n";
    std::cout << std::left << std::setw(26) << "algorithm" << std::right
              << std::setw(4) << "n" << std::setw(4) << "k" << std::setw(7)
              << "dead" << std::setw(10) << "states" << std::setw(9)
              << "exhst" << std::setw(11) << "violation" << std::setw(12)
              << "expected\n";

    struct Case {
        std::unique_ptr<Algorithm> algorithm;
        int n;
        int k;
        std::vector<ProcessId> dead;
        int depth;
        bool expect_violation;
        /// Timing repetitions: sub-millisecond cases repeat the
        /// exploration and report the mean, so the engine comparison is
        /// not dominated by timer resolution.
        int reps;
        const char* why;
    };
    std::vector<Case> cases;
    // Impossible side: flooding is no consensus protocol (k=1, f=1).
    cases.push_back({std::make_unique<algo::FloodingKSet>(2), 3, 1, {}, 10,
                     true, 5, "flooding != consensus"});
    // Flooding does achieve 2-set agreement at n=3, f=1: no schedule
    // reaches 3 distinct decisions while respecting the threshold.
    cases.push_back({std::make_unique<algo::FloodingKSet>(2), 3, 2, {}, 10,
                     false, 5, "flooding = (f+1)-set"});
    // Possible side: the FLP protocol with one initial crash stays
    // consensus under EVERY schedule (Theorem 8, k=1, n=3, f=1).
    cases.push_back({algo::make_flp_kset(3, 1), 3, 1, {3}, 14, false, 30,
                     "Thm 8 possibility"});
    cases.push_back({algo::make_flp_kset(3, 1), 3, 1, {}, 14, false, 1,
                     "Thm 8, no crash"});
    // k-set generalization: L=2 on n=4 bounds decisions by 2.
    cases.push_back({algo::make_flp_kset(4, 2), 4, 2, {1, 2}, 12, false, 30,
                     "Thm 8, k=2"});
    // Trivial protocol: n distinct decisions immediately.
    cases.push_back({std::make_unique<algo::TrivialWaitFree>(), 3, 2, {}, 4,
                     true, 100, "n-set only"});

    auto config_for = [&](const Case& c) {
        core::ExploreConfig cfg;
        cfg.n = c.n;
        cfg.inputs = distinct_inputs(c.n);
        cfg.plan.set_initially_dead(c.dead);
        cfg.k = c.k;
        cfg.max_depth = quick ? std::min(c.depth, 8) : c.depth;
        cfg.max_states = 400000;
        return cfg;
    };

    bool all = true;
    for (const Case& c : cases) {
        core::ExploreConfig cfg = config_for(c);
        cfg.threads = threads;
        core::ExploreResult r = core::explore_schedules(*c.algorithm, cfg);
        // Quick mode caps depths, so exhaustiveness and violation
        // expectations (which assume the full depth) are not enforced.
        const bool as_expected =
            quick || r.violation_found == c.expect_violation;
        all = all && as_expected &&
              (quick || r.exhaustive || r.violation_found);
        std::cout << std::left << std::setw(26) << c.algorithm->name()
                  << std::right << std::setw(4) << c.n << std::setw(4) << c.k
                  << std::setw(7) << c.dead.size() << std::setw(10)
                  << r.states_explored << std::setw(9)
                  << (r.exhaustive ? "yes" : "cut") << std::setw(11)
                  << (r.violation_found ? "FOUND" : "none") << std::setw(12)
                  << (as_expected ? "matches" : "MISMATCH") << "  ["
                  << c.why << "]\n";
    }
    std::cout << "\n"
              << (all ? "every verdict matches the theory"
                      : "MISMATCH AGAINST THEORY")
              << "\n";

    // ------------------------------------------------------------------
    // Engine comparison.
    std::cout << "\nengine comparison (replay baseline vs snapshot engine, "
              << threads << " threads)\n\n";
    std::cout << std::left << std::setw(26) << "case" << std::right
              << std::setw(7) << "depth" << std::setw(10) << "states"
              << std::setw(13) << "baseline ms" << std::setw(10) << "ref ms"
              << std::setw(10) << "fast ms" << std::setw(11) << "fast-N ms"
              << std::setw(10) << "speedup" << std::setw(8) << "agree\n";

    ksa::bench::BenchReport report("explorer");
    bool engines_agree = true;
    for (const Case& c : cases) {
        core::ExploreConfig cfg = config_for(c);
        const int reps = quick ? 1 : c.reps;

        core::ExploreResult baseline_r, ref_r, fast_r, fast_mt_r;
        cfg.mode = core::ExploreMode::kReplayBaseline;
        const double baseline_ms =
            ksa::bench::time_call_ms([&] {
                for (int r = 0; r < reps; ++r)
                    baseline_r = core::explore_schedules(*c.algorithm, cfg);
            }) /
            reps;
        cfg.mode = core::ExploreMode::kReference;
        cfg.threads = 1;
        const double ref_ms =
            ksa::bench::time_call_ms([&] {
                for (int r = 0; r < reps; ++r)
                    ref_r = core::explore_schedules(*c.algorithm, cfg);
            }) /
            reps;
        cfg.mode = core::ExploreMode::kFast;
        cfg.threads = 1;
        const double fast_ms =
            ksa::bench::time_call_ms([&] {
                for (int r = 0; r < reps; ++r)
                    fast_r = core::explore_schedules(*c.algorithm, cfg);
            }) /
            reps;
        cfg.threads = threads;
        const double fast_mt_ms =
            ksa::bench::time_call_ms([&] {
                for (int r = 0; r < reps; ++r)
                    fast_mt_r = core::explore_schedules(*c.algorithm, cfg);
            }) /
            reps;

        const bool agree = same_result(baseline_r, ref_r) &&
                           same_result(baseline_r, fast_r) &&
                           same_result(baseline_r, fast_mt_r);
        engines_agree = engines_agree && agree;
        const double best_ms = std::min(fast_ms, fast_mt_ms);
        const double speedup = best_ms > 0 ? baseline_ms / best_ms : 0.0;

        std::cout << std::left << std::setw(26) << c.why << std::right
                  << std::setw(7) << cfg.max_depth << std::setw(10)
                  << fast_r.states_explored << std::setw(13) << std::fixed
                  << std::setprecision(1) << baseline_ms << std::setw(10)
                  << ref_ms << std::setw(10) << fast_ms << std::setw(11)
                  << fast_mt_ms << std::setw(9) << speedup << "x"
                  << std::setw(8) << (agree ? "yes" : "NO") << "\n";
        std::cout.unsetf(std::ios::fixed);

        report.entry(c.why)
            .str("algorithm", c.algorithm->name())
            .num("n", c.n)
            .num("k", c.k)
            .num("dead", c.dead.size())
            .num("max_depth", cfg.max_depth)
            .num("timing_reps", reps)
            .num("states", fast_r.states_explored)
            .num("expansions", fast_r.schedules_expanded)
            .boolean("violation", fast_r.violation_found)
            .num("threads", threads)
            .num("baseline_ms", baseline_ms)
            .num("reference_ms", ref_ms)
            .num("fast_ms", fast_ms)
            .num("fast_mt_ms", fast_mt_ms)
            .num("speedup_vs_baseline", speedup)
            .boolean("engines_agree", agree);
    }
    std::cout << "\n"
              << (engines_agree
                      ? "all engines agree bit-identically on every case"
                      : "ENGINE DISAGREEMENT -- the snapshot engine is wrong")
              << "\n";

    if (!out_path.empty()) report.write(out_path);
    return all && engines_agree ? 0 : 1;
}
