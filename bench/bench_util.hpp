#pragma once
// Shared bench harness: a monotonic wall timer and a dependency-free
// JSON reporter for the BENCH_*.json artifacts.
//
// Report schema (doc/performance.md §"Bench JSON schema"):
//
//   {
//     "suite": "<suite name>",
//     "entries": [
//       {"name": "<entry name>", "<key>": <value>, ...},
//       ...
//     ]
//   }
//
// Keys appear in insertion order; values are numbers, booleans or
// strings.  Timings are measured quantities and therefore the ONE
// intentionally nondeterministic output of this repository -- every
// derived fact in an entry (state counts, verdicts, speedup inputs)
// must still be byte-stable, which is why entries carry them alongside
// the milliseconds: two BENCH files from different machines must agree
// on everything except the timings.

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace ksa::bench {

/// Monotonic wall-clock timer.
class WallTimer {
public:
    WallTimer() : start_(clock::now()) {}
    void reset() { start_ = clock::now(); }
    /// Elapsed wall time in milliseconds since construction/reset.
    double elapsed_ms() const {
        return std::chrono::duration<double, std::milli>(clock::now() -
                                                         start_)
            .count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Times one call of `fn` in milliseconds.
template <typename Fn>
double time_call_ms(Fn&& fn) {
    WallTimer t;
    fn();
    return t.elapsed_ms();
}

/// One named measurement row of a bench report.
class BenchEntry {
public:
    explicit BenchEntry(std::string name);

    BenchEntry& num(const std::string& key, double value);
    BenchEntry& num(const std::string& key, std::int64_t value);
    BenchEntry& num(const std::string& key, std::uint64_t value);
    BenchEntry& num(const std::string& key, int value);
    BenchEntry& boolean(const std::string& key, bool value);
    BenchEntry& str(const std::string& key, const std::string& value);

    std::string to_json() const;  ///< one JSON object, single line

private:
    std::string name_;
    /// key -> already-rendered JSON value, in insertion order.
    std::vector<std::pair<std::string, std::string>> fields_;
};

/// A bench report: a named suite of entries, rendered as stable JSON.
class BenchReport {
public:
    explicit BenchReport(std::string suite);

    /// Appends and returns a new entry (deque storage: the reference
    /// stays valid across later appends).
    BenchEntry& entry(std::string name);

    std::string to_json() const;

    /// Writes to_json() to `path` (overwrites) and echoes the path to
    /// stdout.  Throws UsageError if the file cannot be written.
    void write(const std::string& path) const;

private:
    std::string suite_;
    std::deque<BenchEntry> entries_;
};

}  // namespace ksa::bench
