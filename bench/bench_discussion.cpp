// E11 -- the Discussion section's design rule, measured.
//
// "What can be learned from our result is that, whatever one adds to
// Sigma_k, it has to allow solving consensus in each partition."
//
// The table runs the SAME Theorem-10-style adversary (singleton blocks,
// leader set split inside D, decision announcements held back) against
// two protocols:
//
//   * quorum-leader-kset on (Sigma_k, Omega_k): the partition detector
//     lets every block assemble quorums locally -> k+1 values;
//   * kset-paxos on (Sigma_1, Omega_k): quorums intersect globally, the
//     singleton blocks starve in isolation, condition (dec-Dbar) is
//     unsatisfiable -> the trap does not spring, and under benign
//     completion the protocol meets the k-set spec.

#include <iomanip>
#include <iostream>

#include "algo/kset_paxos.hpp"
#include "algo/quorum_leader_kset.hpp"
#include "core/kset_spec.hpp"
#include "core/theorem1.hpp"
#include "core/theorem10.hpp"
#include "fd/sources.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

int main() {
    using namespace ksa;
    std::cout << "E11: what must be added to Sigma_k (Discussion)\n\n";
    std::cout << std::setw(4) << "n" << std::setw(4) << "k" << std::setw(26)
              << "(Sigma_k,Omega_k) cand." << std::setw(26)
              << "(Sigma_1,Omega_k) paxos" << "\n";

    bool all = true;
    for (int n : {5, 6, 8}) {
        for (int k = 2; k <= n - 2 && k <= 4; ++k) {
            // The flawed candidate under the genuine Theorem 10 engine.
            algo::QuorumLeaderKSet flawed;
            core::Theorem10Result t10 = core::run_theorem10(flawed, n, k, 4000);
            std::ostringstream left;
            left << (t10.certificate.violation ? "DEFEATED: " : "survived: ")
                 << t10.certificate.violating_values.size() << " values";

            // The strengthened protocol under the same geometry but with
            // Sigma_1 quorums.
            algo::KSetPaxos strong(k);
            std::vector<std::vector<ProcessId>> blocks;
            for (ProcessId p = 1; p <= k - 1; ++p) blocks.push_back({p});
            core::Theorem1Inputs in;
            in.algorithm = &strong;
            in.spec = core::make_partition_spec(n, k, blocks);
            in.inputs = distinct_inputs(n);
            in.stage_budget = 400;
            in.max_steps = 30000;
            in.oracle_factory = [&](core::CertRun, const FailurePlan& plan) {
                return std::unique_ptr<FdOracle>(
                    std::make_unique<fd::ComposedOracle>(
                        std::make_unique<fd::CorrectSetQuorum>(n, plan),
                        std::make_unique<fd::StableLeaders>(
                            core::theorem10_leader_set(n, k), 0)));
            };
            core::Theorem1Certificate cert = core::certify_theorem1(in);
            std::ostringstream right;
            right << (cert.condition_b ? "TRAPPED" : "escapes")
                  << " (dec-Dbar "
                  << (cert.condition_b ? "satisfiable" : "unsatisfiable")
                  << ")";

            const bool row_ok = t10.certificate.violation && !cert.condition_b;
            all = all && row_ok;
            std::cout << std::setw(4) << n << std::setw(4) << k
                      << std::setw(26) << left.str() << std::setw(36)
                      << right.str() << (row_ok ? "" : "  UNEXPECTED") << "\n";
        }
    }

    std::cout << "\nAnd the strengthened protocol actually works: benign "
                 "(Sigma_1, Omega_k) trials\n";
    std::cout << std::setw(4) << "n" << std::setw(4) << "k" << std::setw(12)
              << "#values" << std::setw(10) << "spec\n";
    for (int n : {5, 7}) {
        for (int k = 2; k <= 3; ++k) {
            algo::KSetPaxos algorithm(k);
            FailurePlan plan;
            std::vector<ProcessId> leaders;
            for (ProcessId p = 1; p <= k; ++p) leaders.push_back(p);
            auto oracle = std::make_unique<fd::ComposedOracle>(
                std::make_unique<fd::CorrectSetQuorum>(n, plan),
                std::make_unique<fd::StableLeaders>(leaders, 0));
            RandomScheduler sched(n * 10 + k);
            Run run = execute_run(algorithm, n, distinct_inputs(n), plan,
                                  sched, oracle.get());
            auto check = core::check_kset_agreement(run, k);
            all = all && check.ok();
            std::cout << std::setw(4) << n << std::setw(4) << k
                      << std::setw(12) << run.distinct_decisions().size()
                      << std::setw(10) << (check.ok() ? "ok" : "FAIL") << "\n";
        }
    }
    return all ? 0 : 1;
}
