// A1 -- ablations of the reproduction's design choices.
//
//   (a) Window width in the Theorem 2 split schedule: the cyclic listen
//       window must have width exactly l = n-f -- narrower stalls the
//       f-resilient candidate (it cannot gather n-f proposals), wider
//       merges the minima and the split disappears.  This locates the
//       crossover the construction sits on.
//   (b) Scheduler choice for the possibility results: round-robin vs
//       seeded-random vs partition+release all preserve the FLP
//       protocol's guarantees (the protocol is schedule-insensitive),
//       but differ in steps-to-quiescence.
//   (c) Decision-announcement holdback in the Theorem 10 split: without
//       the "hold DEC" filter the split collapses to one value --
//       demonstrating that the violation needs genuine asynchrony, not
//       just the partition detector.

#include <iomanip>
#include <iostream>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "algo/quorum_leader_kset.hpp"
#include "core/restriction.hpp"
#include "core/theorem10.hpp"
#include "core/theorem2.hpp"
#include "fd/sources.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

int main() {
    using namespace ksa;

    std::cout << "A1a: window width vs split, Theorem 2 at (n,f,k)=(7,4,2), "
                 "candidate threshold 3\n\n";
    std::cout << std::setw(8) << "window" << std::setw(12) << "D stalls"
              << std::setw(14) << "D #values" << std::setw(10) << "split\n";
    {
        const int n = 7, f = 4, k = 2;
        algo::FloodingKSet candidate(n - f);
        core::PartitionSpec spec =
            core::make_partition_spec(n, k, core::theorem2_blocks(n, f, k));
        for (int window = 1; window <= static_cast<int>(spec.d.size());
             ++window) {
            core::RestrictedAlgorithm restricted(candidate, spec.d);
            FailurePlan dead;
            for (const auto& b : spec.blocks)
                for (ProcessId p : b) dead.set_initially_dead(p);
            auto stages = core::window_split_stages(spec.d, window, 600);
            StagedScheduler sched(stages);
            System sys(restricted, n, distinct_inputs(n), dead);
            Run run = sys.execute(sched, {.max_steps = 5000});
            auto values = run.distinct_decisions(spec.d);
            std::cout << std::setw(8) << window << std::setw(12)
                      << (sched.stalled_stages().empty() ? "no" : "YES")
                      << std::setw(14) << values.size() << std::setw(10)
                      << (values.size() >= 2 ? "YES" : "no") << "\n";
        }
    }

    std::cout << "\nA1b: scheduler ablation for the FLP protocol (n=9, two "
                 "initial crashes)\n\n";
    std::cout << std::left << std::setw(24) << "scheduler" << std::right
              << std::setw(10) << "steps" << std::setw(12) << "messages"
              << std::setw(12) << "#values\n";
    {
        auto algorithm = algo::make_flp_consensus(9);
        FailurePlan plan;
        plan.set_initially_dead({4, 8});
        auto report = [&](const char* label, Scheduler& sched) {
            Run run = execute_run(*algorithm, 9, distinct_inputs(9), plan,
                                  sched);
            std::cout << std::left << std::setw(24) << label << std::right
                      << std::setw(10) << run.steps.size() << std::setw(12)
                      << run.messages_sent() << std::setw(12)
                      << run.distinct_decisions().size() << "\n";
        };
        RoundRobinScheduler rr;
        report("round-robin", rr);
        RandomScheduler rnd(11);
        report("random(seed=11)", rnd);
        RandomScheduler rnd2(12);
        report("random(seed=12)", rnd2);
        PartitionScheduler part({{1, 2, 3, 5, 6, 7, 9}});
        report("partition+release", part);
    }

    std::cout << "\nA1c: holdback ablation in Theorem 10 (n=5, k=2)\n\n";
    {
        const int n = 5, k = 2;
        algo::QuorumLeaderKSet candidate;
        auto fd_blocks = core::theorem10_fd_blocks(n, k);
        auto ld = core::theorem10_leader_set(n, k);
        std::vector<ProcessId> d;
        for (ProcessId p = k; p <= n; ++p) d.push_back(p);
        FailurePlan plan;

        auto run_variant = [&](bool hold_dec) {
            auto oracle =
                fd::make_partition_detector(n, k, fd_blocks, plan, ld, 0);
            StagedScheduler::Stage stage;
            stage.active = d;
            stage.filter = [&d, hold_dec](const Message& m, ProcessId) {
                const bool in_d =
                    std::find(d.begin(), d.end(), m.from) != d.end();
                return in_d && (!hold_dec || m.payload.tag != "DEC");
            };
            stage.done = [](const SystemView& v) {
                return v.decided(2) && v.decided(3);
            };
            stage.budget = 2000;
            StagedScheduler sched({stage});
            System sys(candidate, n, distinct_inputs(n), plan, oracle.get());
            Run run = sys.execute(sched, {.max_steps = 8000});
            return run.distinct_decisions(d).size();
        };
        std::cout << "  deliver-all within D (no holdback): "
                  << run_variant(false) << " value(s) in D\n";
        std::cout << "  hold decision announcements:        "
                  << run_variant(true) << " value(s) in D\n";
        std::cout << "  => the k+1-value witness needs the DEC holdback; the\n"
                     "     partition detector alone does not split D.\n";
    }
    return 0;
}
