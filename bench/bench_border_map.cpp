// E10 -- the synthesized solvability landscape: for each n, the (f, k)
// map of the three settings the paper treats, with the technique that
// decides each cell.
//
//   S = solvable, achieved by an algorithm in this library
//   X = impossible by the paper's "easy" reduction (Theorems 2/8/10)
//   x = impossible only by the topological bound (k <= f) -- the band
//       the paper's Section I contrasts its technique against
//
// The map makes the paper's coverage claim visual: in the initial-crash
// setting and the detector setting the easy technique is EXACT; in the
// general asynchronous setting it reaches k <= (n-1)/(n-f) of the true
// k <= f border.

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/border_map.hpp"
#include "exec/thread_pool.hpp"

int main(int argc, char** argv) {
    using namespace ksa;
    // Rows are computed in parallel and printed in row order; output is
    // byte-identical for every thread count.
    const int threads =
        argc > 1 ? std::atoi(argv[1]) : exec::hardware_threads();
    std::cout << "E10: solvability maps (columns k = 1.." << "n-1)\n";
    std::cout << "  S solvable here | X impossible (easy reduction) | "
                 "x impossible (topology only)\n";

    for (int n : {4, 6, 8, 10, 12, 16}) {
        std::cout << "\nn = " << n << "\n";
        std::cout << "  (Sigma_k,Omega_k), any f:  " << core::detector_line(n)
                  << "\n";
        const int width = std::max(n + 1, 15);
        std::cout << std::setw(6) << "f" << "  " << std::left
                  << std::setw(width) << "initial-crash" << "async-crash"
                  << std::right << "\n";
        for (const core::BorderRow& row : core::border_map(n, threads)) {
            std::cout << std::setw(6) << row.f << "  " << std::left
                      << std::setw(width) << row.initial << row.async_
                      << std::right << "\n";
        }
    }

    std::cout << "\nreading guide: each string has one character per k; the\n"
                 "initial-crash column flips S exactly at k > f/(n-f)\n"
                 "(Theorem 8); the async column is X up to (n-1)/(n-f)\n"
                 "(Theorem 2), x up to f (topology), S from f+1 (flooding).\n";
    return 0;
}
