// E2 -- Theorem 8, possibility side: k-set agreement with up to f
// initial crashes is solvable iff k*n > (k+1)*f.
//
// For each (n, f), prints the minimal solvable k per the arithmetic,
// then runs the generalized FLP protocol (L = n-f) over randomized
// crash sets and schedules and reports the worst observed number of
// distinct decisions together with the spec verdict.  The observed
// divergence never exceeds the bound floor(live/L) <= k.

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <random>

#include "core/bounds.hpp"
#include "core/theorem8.hpp"

int main() {
    using namespace ksa;
    std::cout << "E2: Theorem 8 possibility sweep (protocol: initial-clique, "
                 "L = n-f)\n\n";
    std::cout << std::setw(4) << "n" << std::setw(4) << "f" << std::setw(8)
              << "min k" << std::setw(8) << "L" << std::setw(12) << "trials"
              << std::setw(12) << "worst#" << std::setw(12) << "bound"
              << std::setw(10) << "spec\n";

    std::mt19937_64 rng(7);
    bool all_ok = true;
    for (int n : {4, 6, 8, 10, 12}) {
        for (int f = 1; f < n; ++f) {
            const int k = core::theorem8_min_k(n, f);
            if (k >= n) continue;  // degenerate
            const int trials = 30;
            int worst = 0;
            bool ok = true;
            for (int t = 0; t < trials; ++t) {
                std::vector<ProcessId> ids;
                for (ProcessId p = 1; p <= n; ++p) ids.push_back(p);
                std::shuffle(ids.begin(), ids.end(), rng);
                const int crashes = static_cast<int>(rng() % (f + 1));
                std::vector<ProcessId> dead(ids.begin(), ids.begin() + crashes);
                core::Theorem8Trial trial =
                    core::theorem8_trial(n, f, k, dead, rng());
                worst = std::max(worst, trial.distinct_decisions);
                ok = ok && trial.check.ok();
            }
            all_ok = all_ok && ok;
            std::cout << std::setw(4) << n << std::setw(4) << f << std::setw(8)
                      << k << std::setw(8) << n - f << std::setw(12) << trials
                      << std::setw(12) << worst << std::setw(9) << "<=" << k
                      << std::setw(10) << (ok ? "ok" : "VIOLATED") << "\n";
        }
    }
    std::cout << "\nk = 1 column reproduces the FLP initial-crash consensus "
                 "protocol (majority of correct processes).\n";
    return all_ok ? 0 : 1;
}
