// E5 -- Corollary 13, possibility ends in depth: consensus with
// (Sigma, Omega) and (n-1)-set agreement with Sigma_{n-1} across crash
// sets, seeds and adversarial oracles, including the tightness run
// showing exactly n-1 distinct decisions under the lonely-stress
// detector history.

#include <iomanip>
#include <iostream>

#include "core/corollary13.hpp"

int main() {
    using namespace ksa;
    std::cout << "E5: Corollary 13 possibility trials\n\n";

    bool all = true;
    std::cout << "k = 1 (paxos + (Sigma, Omega)):\n";
    std::cout << std::setw(4) << "n" << std::setw(10) << "#dead"
              << std::setw(10) << "trials" << std::setw(10) << "spec\n";
    for (int n : {3, 5, 7, 9}) {
        for (int dead = 0; dead <= (n - 1) / 2; ++dead) {
            bool ok = true;
            for (std::uint64_t seed = 1; seed <= 10; ++seed) {
                std::vector<ProcessId> faulty;
                for (int i = 0; i < dead; ++i)
                    faulty.push_back(static_cast<ProcessId>(
                        (seed + static_cast<std::uint64_t>(i) * 2) % n + 1));
                std::sort(faulty.begin(), faulty.end());
                faulty.erase(std::unique(faulty.begin(), faulty.end()),
                             faulty.end());
                core::Corollary13Trial t =
                    core::corollary13_consensus_trial(n, faulty, seed);
                ok = ok && t.check.ok() && t.distinct_decisions == 1;
            }
            all = all && ok;
            std::cout << std::setw(4) << n << std::setw(10) << dead
                      << std::setw(10) << 10 << std::setw(10)
                      << (ok ? "ok" : "FAIL") << "\n";
        }
    }

    std::cout << "\nk = n-1 (ranked + Sigma_{n-1}):\n";
    std::cout << std::setw(4) << "n" << std::setw(10) << "#dead"
              << std::setw(12) << "worst#" << std::setw(10) << "spec\n";
    for (int n : {3, 4, 5, 6, 8}) {
        for (int dead : {0, 1, n - 1}) {
            int worst = 0;
            bool ok = true;
            for (std::uint64_t seed = 1; seed <= 10; ++seed) {
                std::vector<ProcessId> faulty;
                for (int i = 0; i < dead; ++i)
                    faulty.push_back(static_cast<ProcessId>(
                        (seed + static_cast<std::uint64_t>(i)) % n + 1));
                std::sort(faulty.begin(), faulty.end());
                faulty.erase(std::unique(faulty.begin(), faulty.end()),
                             faulty.end());
                if (static_cast<int>(faulty.size()) >= n) continue;
                core::Corollary13Trial t =
                    core::corollary13_set_trial(n, faulty, seed);
                worst = std::max(worst, t.distinct_decisions);
                ok = ok && t.check.ok();
            }
            all = all && ok;
            std::cout << std::setw(4) << n << std::setw(10) << dead
                      << std::setw(12) << worst << std::setw(10)
                      << (ok ? "ok" : "FAIL") << "\n";
        }
    }

    std::cout << "\ntightness: lonely-stress oracle realizes exactly n-1 "
                 "values\n";
    std::cout << std::setw(4) << "n" << std::setw(12) << "#values"
              << std::setw(12) << "= n-1?\n";
    for (int n : {3, 4, 5, 6, 7, 8}) {
        core::Corollary13Trial t = core::corollary13_tightness_trial(n, 1);
        const bool tight = t.distinct_decisions == n - 1 && t.check.ok();
        all = all && tight;
        std::cout << std::setw(4) << n << std::setw(12) << t.distinct_decisions
                  << std::setw(12) << (tight ? "yes" : "NO") << "\n";
    }
    return all ? 0 : 1;
}
