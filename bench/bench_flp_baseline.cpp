// E8 -- The FLP initial-crash consensus baseline: message and step
// complexity versus n, plus the effect of the threshold L on divergence.
//
// The two-stage protocol sends 2 broadcasts per live process (O(n^2)
// messages); the table confirms the quadratic shape and shows how the
// decision count responds to lowering L below the majority (the k-set
// generalization trading agreement for resilience).

#include <iomanip>
#include <iostream>

#include "algo/initial_clique.hpp"
#include "core/kset_spec.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

int main() {
    using namespace ksa;
    std::cout << "E8: FLP baseline complexity (fair schedule, no crashes)\n\n";
    std::cout << std::setw(6) << "n" << std::setw(6) << "L" << std::setw(10)
              << "steps" << std::setw(12) << "messages" << std::setw(12)
              << "msgs/n^2" << std::setw(10) << "#values\n";

    for (int n : {3, 5, 7, 9, 13, 17, 25, 33}) {
        auto algorithm = algo::make_flp_consensus(n);
        RoundRobinScheduler rr;
        Run run = execute_run(*algorithm, n, distinct_inputs(n), {}, rr);
        core::expect_kset_agreement(run, 1);
        std::cout << std::setw(6) << n << std::setw(6) << (n + 2) / 2
                  << std::setw(10) << run.steps.size() << std::setw(12)
                  << run.messages_sent() << std::setw(12) << std::fixed
                  << std::setprecision(2)
                  << static_cast<double>(run.messages_sent()) / (n * n)
                  << std::setw(10) << run.distinct_decisions().size() << "\n";
    }

    std::cout << "\ntrading agreement for resilience at n = 12 (partitioned "
                 "adversary, groups of size L):\n";
    std::cout << std::setw(6) << "L" << std::setw(6) << "f" << std::setw(10)
              << "k bound" << std::setw(16) << "worst observed\n";
    const int n = 12;
    for (int l : {2, 3, 4, 6, 7}) {
        algo::InitialCliqueKSet algorithm(l);
        // Worst case: partition into floor(n/L) groups of size >= L.
        std::vector<std::vector<ProcessId>> blocks;
        ProcessId next = 1;
        while (next + l - 1 <= n) {
            std::vector<ProcessId> b;
            for (int j = 0; j < l; ++j) b.push_back(next++);
            blocks.push_back(std::move(b));
        }
        for (; next <= n; ++next) blocks.back().push_back(next);
        PartitionScheduler sched(blocks);
        Run run = execute_run(algorithm, n, distinct_inputs(n), {}, sched);
        std::cout << std::setw(6) << l << std::setw(6) << n - l << std::setw(10)
                  << n / l << std::setw(16) << run.distinct_decisions().size()
                  << "\n";
    }
    return 0;
}
