// P1 -- the deterministic parallel sweep engine, measured.
//
// Runs the Theorem 8 resilience sweep (chaos trials over the full
// (n, k, f) grid) and the large-n border maps with 1 thread and with N
// threads, checks that the reports are byte-identical (the exec-layer
// determinism contract, enforced end-to-end), and writes wall times and
// scaling to BENCH_sweep.json (schema: doc/performance.md).
//
// Usage: bench_parallel_sweep [--out FILE] [--threads N] [--quick]

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "chaos/profile.hpp"
#include "chaos/resilience.hpp"
#include "core/border_map.hpp"
#include "exec/thread_pool.hpp"

int main(int argc, char** argv) {
    using namespace ksa;

    std::string out_path;
    int threads = exec::hardware_threads();
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else {
            std::cerr << "usage: bench_parallel_sweep [--out FILE] "
                         "[--threads N] [--quick]\n";
            return 2;
        }
    }

    std::cout << "P1: deterministic parallel sweeps (1 thread vs " << threads
              << " threads)\n\n";
    ksa::bench::BenchReport report("parallel-sweep");
    bool all_identical = true;

    // -- resilience sweep --------------------------------------------
    chaos::SweepConfig cfg;
    cfg.min_n = 2;
    cfg.max_n = quick ? 5 : 7;
    cfg.seeds_per_cell = quick ? 6 : 20;
    cfg.base_seed = 1;
    cfg.profile = chaos::guarded_profile(1);

    cfg.threads = 1;
    chaos::SweepReport seq;
    const double sweep_seq_ms = ksa::bench::time_call_ms(
        [&] { seq = chaos::resilience_sweep(cfg); });
    cfg.threads = threads;
    chaos::SweepReport par;
    const double sweep_par_ms = ksa::bench::time_call_ms(
        [&] { par = chaos::resilience_sweep(cfg); });

    const bool sweep_identical = seq.to_json() == par.to_json() &&
                                 seq.to_markdown() == par.to_markdown();
    all_identical = all_identical && sweep_identical;
    std::cout << "resilience_sweep  n<=" << cfg.max_n << ", "
              << cfg.seeds_per_cell << " seeds/cell: " << std::fixed
              << std::setprecision(1) << sweep_seq_ms << " ms -> "
              << sweep_par_ms << " ms ("
              << (sweep_par_ms > 0 ? sweep_seq_ms / sweep_par_ms : 0.0)
              << "x), reports "
              << (sweep_identical ? "byte-identical" : "DIFFER") << "\n";
    report.entry("resilience_sweep")
        .num("max_n", cfg.max_n)
        .num("seeds_per_cell", cfg.seeds_per_cell)
        .num("cells", seq.cells.size())
        .num("trials", seq.total_trials())
        .num("threads", threads)
        .num("seq_ms", sweep_seq_ms)
        .num("par_ms", sweep_par_ms)
        .num("speedup", sweep_par_ms > 0 ? sweep_seq_ms / sweep_par_ms : 0.0)
        .boolean("reports_identical", sweep_identical)
        .boolean("boundary_clean", seq.boundary_clean());

    // -- border map ---------------------------------------------------
    const int map_n = quick ? 64 : 256;
    std::vector<core::BorderRow> rows_seq, rows_par;
    const double map_seq_ms = ksa::bench::time_call_ms(
        [&] { rows_seq = core::border_map(map_n, 1); });
    const double map_par_ms = ksa::bench::time_call_ms(
        [&] { rows_par = core::border_map(map_n, threads); });
    bool map_identical = rows_seq.size() == rows_par.size();
    for (std::size_t i = 0; map_identical && i < rows_seq.size(); ++i)
        map_identical = rows_seq[i].f == rows_par[i].f &&
                        rows_seq[i].initial == rows_par[i].initial &&
                        rows_seq[i].async_ == rows_par[i].async_;
    all_identical = all_identical && map_identical;
    std::cout << "border_map        n=" << map_n << ": " << map_seq_ms
              << " ms -> " << map_par_ms << " ms, rows "
              << (map_identical ? "byte-identical" : "DIFFER") << "\n";
    std::cout.unsetf(std::ios::fixed);
    report.entry("border_map")
        .num("n", map_n)
        .num("rows", rows_seq.size())
        .num("threads", threads)
        .num("seq_ms", map_seq_ms)
        .num("par_ms", map_par_ms)
        .boolean("rows_identical", map_identical);

    std::cout << "\n"
              << (all_identical
                      ? "every parallel report is byte-identical to its "
                        "sequential reference"
                      : "DETERMINISM VIOLATION across thread counts")
              << "\n";
    if (!out_path.empty()) report.write(out_path);
    return all_identical ? 0 : 1;
}
