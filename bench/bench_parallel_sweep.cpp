// P1 -- the deterministic parallel sweep engine, measured.
//
// Runs the Theorem 8 resilience sweep (chaos trials over the full
// (n, k, f) grid), the large-n border map and the depth-14 flagship
// kReduced exploration with 1 thread and with N threads, checks that
// the outputs are byte-identical (the exec-layer determinism contract,
// enforced end-to-end), and writes wall times and scaling to
// BENCH_sweep.json (schema: doc/performance.md).
//
// --check is the scaling-regression gate (ctest: perf_scaling_regression):
// it re-measures on THIS machine and fails when the work-stealing core
// stops paying -- 4-thread sweep speedup < 1.5x, or the flagship
// explorer slower multi-threaded than single-threaded.  On machines
// with fewer than 4 hardware threads it exits 77 (ctest SKIP): the
// scheduler clamps to the hardware there, so "4-thread" scaling is not
// a measurable quantity.
//
// Usage: bench_parallel_sweep [--out FILE] [--threads N] [--quick]
//                             [--check]

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "algo/initial_clique.hpp"
#include "bench_util.hpp"
#include "chaos/profile.hpp"
#include "chaos/resilience.hpp"
#include "core/border_map.hpp"
#include "core/explorer.hpp"
#include "exec/task_scheduler.hpp"
#include "sim/system.hpp"

namespace {

/// ctest SKIP_RETURN_CODE for the scaling gate: scaling assertions are
/// meaningless when the scheduler clamps below 4 workers.
constexpr int kSkipExitCode = 77;

/// The scaling gate's thresholds (ISSUE 8 acceptance criteria).
constexpr double kMinSweepSpeedup = 1.5;

/// The depth-14 flagship exploration config (the bench_model_check
/// "Thm 8, no crash" case): the largest layered BFS in the tree, so
/// the one where layer-parallel scaling must show.
ksa::core::ExploreConfig flagship_config() {
    ksa::core::ExploreConfig cfg;
    cfg.n = 3;
    cfg.inputs = ksa::distinct_inputs(3);
    cfg.k = 1;
    cfg.max_depth = 14;
    cfg.max_states = 400000;
    return cfg;
}

/// Bit-identity of two explorer results over every reported field
/// (scheduler observability is machine/timing-bound and excluded by
/// contract -- explorer.hpp).
bool same_result(const ksa::core::ExploreResult& a,
                 const ksa::core::ExploreResult& b) {
    return a.states_explored == b.states_explored &&
           a.schedules_expanded == b.schedules_expanded &&
           a.dedup_hits == b.dedup_hits && a.por_skips == b.por_skips &&
           a.exhaustive == b.exhaustive &&
           a.violation_found == b.violation_found &&
           a.quiescent_outcomes == b.quiescent_outcomes &&
           a.reachable_decision_sets == b.reachable_decision_sets;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ksa;

    std::string out_path;
    int threads = exec::hardware_threads();
    bool quick = false;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else {
            std::cerr << "usage: bench_parallel_sweep [--out FILE] "
                         "[--threads N] [--quick] [--check]\n";
            return 2;
        }
    }
    // The gate measures 4-thread scaling of the full-size sweep;
    // --quick would shrink the workload it is gating.
    if (check) {
        quick = false;
        threads = 4;
        if (exec::hardware_threads() < 4) {
            std::cout << "scaling gate SKIPPED: " << exec::hardware_threads()
                      << " hardware thread(s); the scheduler clamps below 4 "
                         "workers, so 4-thread scaling is unmeasurable here\n";
            return kSkipExitCode;
        }
    }

    std::cout << (check ? "scaling-regression gate"
                        : "P1: deterministic parallel sweeps")
              << " (1 thread vs " << threads << " threads)\n\n";
    ksa::bench::BenchReport report("parallel-sweep");
    bool all_identical = true;

    // -- resilience sweep --------------------------------------------
    chaos::SweepConfig cfg;
    cfg.min_n = 2;
    cfg.max_n = quick ? 5 : 7;
    cfg.seeds_per_cell = quick ? 6 : 20;
    cfg.base_seed = 1;
    cfg.profile = chaos::guarded_profile(1);

    cfg.threads = 1;
    chaos::SweepReport seq;
    const double sweep_seq_ms = ksa::bench::time_call_ms(
        [&] { seq = chaos::resilience_sweep(cfg); });
    cfg.threads = threads;
    chaos::SweepReport par;
    const double sweep_par_ms = ksa::bench::time_call_ms(
        [&] { par = chaos::resilience_sweep(cfg); });

    const bool sweep_identical = seq.to_json() == par.to_json() &&
                                 seq.to_markdown() == par.to_markdown();
    const double sweep_speedup =
        sweep_par_ms > 0 ? sweep_seq_ms / sweep_par_ms : 0.0;
    all_identical = all_identical && sweep_identical;
    std::cout << "resilience_sweep  n<=" << cfg.max_n << ", "
              << cfg.seeds_per_cell << " seeds/cell: " << std::fixed
              << std::setprecision(1) << sweep_seq_ms << " ms -> "
              << sweep_par_ms << " ms (" << sweep_speedup
              << "x), reports "
              << (sweep_identical ? "byte-identical" : "DIFFER") << "\n";
    report.entry("resilience_sweep")
        .num("max_n", cfg.max_n)
        .num("seeds_per_cell", cfg.seeds_per_cell)
        .num("cells", seq.cells.size())
        .num("trials", seq.total_trials())
        .num("threads", threads)
        .num("hardware_threads", exec::hardware_threads())
        .num("seq_ms", sweep_seq_ms)
        .num("par_ms", sweep_par_ms)
        .num("speedup", sweep_speedup)
        .boolean("reports_identical", sweep_identical)
        .boolean("boundary_clean", seq.boundary_clean());

    // -- border map ---------------------------------------------------
    const int map_n = quick ? 64 : 256;
    std::vector<core::BorderRow> rows_seq, rows_par;
    const double map_seq_ms = ksa::bench::time_call_ms(
        [&] { rows_seq = core::border_map(map_n, 1); });
    const double map_par_ms = ksa::bench::time_call_ms(
        [&] { rows_par = core::border_map(map_n, threads); });
    bool map_identical = rows_seq.size() == rows_par.size();
    for (std::size_t i = 0; map_identical && i < rows_seq.size(); ++i)
        map_identical = rows_seq[i].f == rows_par[i].f &&
                        rows_seq[i].initial == rows_par[i].initial &&
                        rows_seq[i].async_ == rows_par[i].async_;
    const double map_speedup =
        map_par_ms > 0 ? map_seq_ms / map_par_ms : 0.0;
    all_identical = all_identical && map_identical;
    std::cout << "border_map        n=" << map_n << ": " << map_seq_ms
              << " ms -> " << map_par_ms << " ms (" << map_speedup
              << "x), rows "
              << (map_identical ? "byte-identical" : "DIFFER") << "\n";
    report.entry("border_map")
        .num("n", map_n)
        .num("rows", rows_seq.size())
        .num("threads", threads)
        .num("seq_ms", map_seq_ms)
        .num("par_ms", map_par_ms)
        .num("speedup", map_speedup)
        .boolean("rows_identical", map_identical);

    // -- multi-threaded kReduced explorer -----------------------------
    // The reduction engine's 5.6-33x wins used to be benchmarked only
    // single-threaded; this row tracks whether layer parallelism
    // composes with the reduction (flagship depth-14, all axes on).
    core::ExploreConfig ecfg = flagship_config();
    if (quick) ecfg.max_depth = 8;
    ecfg.mode = core::ExploreMode::kReduced;
    const auto algorithm = algo::make_flp_kset(3, 1);
    core::ExploreResult red_seq, red_par;
    ecfg.threads = 1;
    const double red_seq_ms = ksa::bench::time_call_ms(
        [&] { red_seq = core::explore_schedules(*algorithm, ecfg); });
    ecfg.threads = threads;
    const double red_par_ms = ksa::bench::time_call_ms(
        [&] { red_par = core::explore_schedules(*algorithm, ecfg); });
    const bool red_identical = same_result(red_seq, red_par);
    const double red_speedup =
        red_par_ms > 0 ? red_seq_ms / red_par_ms : 0.0;
    all_identical = all_identical && red_identical;
    std::cout << "reduced_explorer  depth=" << ecfg.max_depth << ": "
              << red_seq_ms << " ms -> " << red_par_ms << " ms ("
              << red_speedup << "x), results "
              << (red_identical ? "byte-identical" : "DIFFER") << "\n";
    std::cout.unsetf(std::ios::fixed);
    report.entry("reduced_explorer")
        .num("n", ecfg.n)
        .num("k", ecfg.k)
        .num("max_depth", ecfg.max_depth)
        .num("canonical_states", red_seq.states_explored)
        .num("threads", threads)
        .num("reduced_ms", red_seq_ms)
        .num("reduced_mt_ms", red_par_ms)
        .num("speedup", red_speedup)
        .boolean("results_identical", red_identical);

    // -- scaling gate -------------------------------------------------
    bool scaling_ok = true;
    if (check) {
        // Flagship kFast: multi-threaded must not lose to
        // single-threaded (best of 3 each -- the gate runs RUN_SERIAL,
        // but one cold-cache sample should not fail the build).
        core::ExploreConfig fcfg = flagship_config();
        fcfg.mode = core::ExploreMode::kFast;
        core::ExploreResult fast_seq, fast_par;
        double fast_ms = 1e300, fast_mt_ms = 1e300;
        for (int r = 0; r < 3; ++r) {
            fcfg.threads = 1;
            fast_ms = std::min(fast_ms, ksa::bench::time_call_ms([&] {
                          fast_seq = core::explore_schedules(*algorithm, fcfg);
                      }));
            fcfg.threads = threads;
            fast_mt_ms = std::min(fast_mt_ms, ksa::bench::time_call_ms([&] {
                             fast_par = core::explore_schedules(*algorithm,
                                                                fcfg);
                         }));
        }
        const bool fast_identical = same_result(fast_seq, fast_par);
        all_identical = all_identical && fast_identical;

        std::cout << "\nscaling gate @ " << threads << " threads:\n";
        auto gate = [&](bool ok, const std::string& what) {
            std::cout << "  " << (ok ? "ok   " : "FAIL ") << what << "\n";
            scaling_ok = scaling_ok && ok;
        };
        gate(sweep_speedup >= kMinSweepSpeedup,
             "sweep speedup " + std::to_string(sweep_speedup) + "x >= " +
                 std::to_string(kMinSweepSpeedup) + "x");
        gate(fast_mt_ms <= fast_ms,
             "flagship fast_mt_ms " + std::to_string(fast_mt_ms) +
                 " <= fast_ms " + std::to_string(fast_ms));
        gate(fast_identical, "flagship results byte-identical");
    }

    std::cout << "\n"
              << (all_identical
                      ? "every parallel report is byte-identical to its "
                        "sequential reference"
                      : "DETERMINISM VIOLATION across thread counts")
              << "\n";
    if (!out_path.empty()) report.write(out_path);
    return all_identical && scaling_ok ? 0 : 1;
}
