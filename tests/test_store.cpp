// Tests for the out-of-core exploration store (src/store/): the bloom
// tier's no-false-negative guarantee, exact-tier equivalence against a
// std::set reference, batch-dedup determinism across thread and shard
// counts, the KSASPILL-1 delta spill round-trip, delta re-fork
// (Rematerializer) equivalence against direct fork/apply_choice replay,
// System::fork() round-trips under live Byzantine fault injection, and
// end-to-end exploration byte-identity under forced spill.
//
// doc/performance.md §6 describes the store; the determinism argument
// tested here is the one stated at the top of store/visited_store.hpp:
// shard ownership plus ascending-index per-shard insertion order makes
// every batch verdict byte-identical to sequential insertion.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "core/explorer.hpp"
#include "exec/task_scheduler.hpp"
#include "sim/byzantine.hpp"
#include "sim/digest.hpp"
#include "sim/message.hpp"
#include "sim/system.hpp"
#include "store/delta_store.hpp"
#include "store/rematerialize.hpp"
#include "store/visited_store.hpp"

namespace ksa::store {
namespace {

/// Deterministic pseudo-random key stream: key(i) is the digest of i,
/// key_dup(i, m) collides on purpose every m-th index so batches carry
/// within-batch duplicates.
Digest128 key_of(std::uint64_t i) {
    StateHasher h;
    h.u64(i);
    h.u64(i * 0x9e3779b97f4a7c15ull);
    return h.digest();
}

// ------------------------------------------------------------ bloom

TEST(BloomFilter, NeverForgetsAnInsertedKey) {
    BloomFilter filter(4096);
    for (std::uint64_t i = 0; i < 2000; ++i) filter.insert(key_of(i));
    for (std::uint64_t i = 0; i < 2000; ++i)
        EXPECT_TRUE(filter.maybe_contains(key_of(i))) << "key " << i;
}

TEST(BloomFilter, RejectsMostAbsentKeysAtDesignLoad) {
    // ~10 bits/key: the false-positive rate must be well under 10%
    // (design target ~1%; the margin keeps the test robust).
    const std::size_t kKeys = 1000;
    BloomFilter filter(kKeys * 10);
    for (std::uint64_t i = 0; i < kKeys; ++i) filter.insert(key_of(i));
    std::size_t fp = 0;
    for (std::uint64_t i = kKeys; i < 2 * kKeys; ++i)
        if (filter.maybe_contains(key_of(i))) ++fp;
    EXPECT_LT(fp, kKeys / 10) << "false-positive rate out of control";
}

// ----------------------------------------------- exact-tier equivalence

TEST(ShardedVisitedStore, MatchesSetReferenceSequentially) {
    for (const int shard_bits : {0, 3}) {
        for (const int filter_bits : {0, 10}) {
            StoreOptions opt;
            opt.shard_bits = shard_bits;
            opt.filter_bits_per_key = filter_bits;
            ShardedVisitedStore store(opt);
            std::set<Digest128> reference;
            // Every 7th key repeats an earlier one; key 0 exercises the
            // all-zero sentinel path.
            for (std::uint64_t i = 0; i < 5000; ++i) {
                const Digest128 key =
                        i % 7 == 0 ? (i % 14 == 0 ? Digest128{} : key_of(i / 7))
                                   : key_of(i);
                EXPECT_EQ(store.insert(key), reference.insert(key).second)
                        << "insert " << i << " shard_bits=" << shard_bits
                        << " filter=" << filter_bits;
            }
            EXPECT_EQ(store.size(), reference.size());
            for (std::uint64_t i = 0; i < 6000; ++i) {
                const Digest128 key = key_of(i);
                EXPECT_EQ(store.contains(key), reference.count(key) != 0)
                        << "contains " << i;
            }
            EXPECT_TRUE(store.contains(Digest128{}));
        }
    }
}

TEST(ShardedVisitedStore, FilterCountersPartitionTheInsertions) {
    StoreOptions opt;
    opt.shard_bits = 2;
    opt.filter_bits_per_key = 10;
    ShardedVisitedStore store(opt);
    std::size_t new_keys = 0;
    for (std::uint64_t i = 0; i < 3000; ++i)
        if (store.insert(key_of(i % 2000))) ++new_keys;
    EXPECT_EQ(new_keys, 2000u);
    const VisitedStats st = store.stats();
    EXPECT_EQ(st.size, 2000u);
    EXPECT_EQ(st.shards, 4u);
    // Every genuinely new non-zero key went through exactly one of the
    // two filter paths: "definitely new" or "false positive".
    EXPECT_EQ(st.filter_negatives + st.filter_false_positives, 2000u);
    // At 10 bits/key the negatives dominate overwhelmingly.
    EXPECT_GT(st.filter_negatives, st.filter_false_positives * 10);
    EXPECT_GT(st.resident_bytes, 2000u * sizeof(Digest128));
}

// ------------------------------------------------- batch determinism

TEST(ShardedVisitedStore, BatchVerdictsMatchSequentialInsertion) {
    // Three batches with cross-batch and within-batch duplicates, run
    // through every (threads, shard_bits) combination: all verdicts
    // must equal the sequential std::set reference, byte for byte.
    std::vector<std::vector<Digest128>> batches(3);
    for (std::uint64_t b = 0; b < 3; ++b)
        for (std::uint64_t i = 0; i < 700; ++i)
            // Stride 5 duplicates inside a batch, stride 3 across
            // batches (batch b repeats keys of batch b-1).
            batches[b].push_back(
                    i % 5 == 0 ? key_of(i / 5)
                               : key_of(400 * (b - (i % 3 == 0 ? 1 : 0)) + i));

    std::vector<std::vector<std::uint8_t>> expected;
    {
        std::set<Digest128> reference;
        for (const auto& batch : batches) {
            std::vector<std::uint8_t> v;
            for (const Digest128& key : batch)
                v.push_back(reference.insert(key).second ? 1 : 0);
            expected.push_back(std::move(v));
        }
    }

    for (const int threads : {1, 2, 4}) {
        for (const int shard_bits : {0, 2, 6}) {
            exec::TaskScheduler sched(threads, /*oversubscribe=*/true);
            StoreOptions opt;
            opt.shard_bits = shard_bits;
            ShardedVisitedStore store(opt);
            std::vector<std::uint8_t> verdict;
            for (std::size_t b = 0; b < batches.size(); ++b) {
                store.insert_batch(sched, batches[b], verdict);
                EXPECT_EQ(verdict, expected[b])
                        << "batch " << b << " threads=" << threads
                        << " shard_bits=" << shard_bits;
            }
            EXPECT_EQ(store.size(), [&] {
                std::set<Digest128> all;
                for (const auto& batch : batches)
                    all.insert(batch.begin(), batch.end());
                return all.size();
            }());
        }
    }
}

// ------------------------------------------------------- delta spill

TEST(DeltaStore, SpillRoundTripPreservesEveryRecord) {
    StoreOptions opt;
    opt.frontier_ram_bytes = 64;  // 4-record window: spill constantly
    DeltaStore deltas(opt);
    const std::uint64_t kCount = 1000;
    for (std::uint64_t i = 0; i < kCount; ++i) {
        DeltaRecord rec;
        rec.parent = i * 3;
        rec.stepper = static_cast<std::uint32_t>(i % 7 + 1);
        rec.delivered = static_cast<std::uint32_t>(i % 5);
        EXPECT_EQ(deltas.append(rec), i);
    }
    EXPECT_EQ(deltas.size(), kCount);
    EXPECT_GT(deltas.spilled_records(), 0u);
    EXPECT_EQ(deltas.spill_bytes(), deltas.spilled_records() * 16);
    EXPECT_TRUE(std::filesystem::exists(deltas.spill_path()));

    // Two independent readers, interleaved access orders (forward and
    // backward), spanning both the spilled prefix and the RAM window.
    DeltaStore::Reader fwd(deltas);
    DeltaStore::Reader bwd(deltas);
    for (std::uint64_t i = 0; i < kCount; ++i) {
        for (const std::uint64_t id : {i, kCount - 1 - i}) {
            const DeltaRecord rec = (id == i ? fwd : bwd).get(id);
            EXPECT_EQ(rec.parent, id * 3) << id;
            EXPECT_EQ(rec.stepper, id % 7 + 1) << id;
            EXPECT_EQ(rec.delivered, id % 5) << id;
        }
    }
    EXPECT_GT(fwd.spill_reads(), 0u);
}

TEST(DeltaStore, SpillFileIsRemovedOnDestruction) {
    std::string path;
    {
        StoreOptions opt;
        opt.frontier_ram_bytes = 64;
        DeltaStore deltas(opt);
        for (std::uint64_t i = 0; i < 100; ++i) deltas.append(DeltaRecord{});
        path = deltas.spill_path();
        ASSERT_FALSE(path.empty());
        ASSERT_TRUE(std::filesystem::exists(path));
    }
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(DeltaStore, UnboundedBudgetNeverTouchesDisk) {
    StoreOptions opt;
    opt.frontier_ram_bytes = 0;  // never spill
    DeltaStore deltas(opt);
    for (std::uint64_t i = 0; i < 10000; ++i) deltas.append(DeltaRecord{i});
    EXPECT_EQ(deltas.spilled_records(), 0u);
    EXPECT_TRUE(deltas.spill_path().empty());
    DeltaStore::Reader reader(deltas);
    EXPECT_EQ(reader.get(9999).parent, 9999u);
    EXPECT_EQ(reader.spill_reads(), 0u);
}

// ---------------------------------------------------- rematerializer

Digest128 test_msg_hash(ProcessId from, const Payload& payload) {
    StateHasher h;
    h.u64(static_cast<std::uint64_t>(from));
    payload.fold(h);
    return h.digest();
}

/// Asserts that `sys` is byte-identical (as far as the public API can
/// see) to the System produced by replaying `script` on a fresh root.
void expect_matches_direct_replay(const Algorithm& algorithm, int n,
                                  const std::vector<Value>& inputs,
                                  const FailurePlan& plan, const System& sys,
                                  const std::vector<StepChoice>& script,
                                  const std::string& label) {
    System direct(algorithm, n, inputs, plan);
    direct.set_recording(false);
    for (const StepChoice& choice : script) direct.apply_choice(choice);
    for (ProcessId p = 1; p <= n; ++p) {
        EXPECT_EQ(sys.last_digest(p), direct.last_digest(p))
                << label << " digest of " << p;
        EXPECT_EQ(sys.steps_of(p), direct.steps_of(p)) << label;
        EXPECT_EQ(sys.crashed(p), direct.crashed(p)) << label;
        EXPECT_EQ(sys.decision_of(p), direct.decision_of(p)) << label;
        const auto& a = sys.buffer(p);
        const auto& b = direct.buffer(p);
        ASSERT_EQ(a.size(), b.size()) << label << " buffer of " << p;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].id, b[i].id) << label;  // ids too: fork copies
            EXPECT_EQ(a[i].from, b[i].from) << label;
            EXPECT_TRUE(a[i].payload == b[i].payload) << label;
        }
    }
}

TEST(Rematerializer, MaterializesTheExactRecordedStates) {
    // Build a small delta tree by hand over flooding(n=3):
    //   0 root
    //   1 = 0 after p1 steps delivering nothing
    //   2 = 0 after p2 steps delivering nothing
    //   3 = 1 after p2 steps delivering its full buffer
    //   4 = 3 after p3 steps delivering 1 message
    //   5 = 2 after p2 steps delivering nothing (sibling branch)
    algo::FloodingKSet algorithm(2);
    const int n = 3;
    const std::vector<Value> inputs = distinct_inputs(n);
    const FailurePlan plan;
    StoreOptions opt;
    opt.frontier_ram_bytes = 64;  // 4-record window: the chain spills
    DeltaStore deltas(opt);
    deltas.append(DeltaRecord{});         // 0: root
    deltas.append(DeltaRecord{0, 1, 0});  // 1
    deltas.append(DeltaRecord{0, 2, 0});  // 2
    deltas.append(DeltaRecord{1, 2, 1});  // 3: delivers p1's broadcast
    deltas.append(DeltaRecord{3, 3, 1});  // 4
    deltas.append(DeltaRecord{2, 2, 0});  // 5

    Rematerializer remat(algorithm, n, inputs, plan, deltas, &test_msg_hash);
    // Materialize in a deliberately non-monotonic order: spine reuse,
    // spine rebuild and the root path are all exercised.
    for (const std::uint64_t id : {1u, 3u, 4u, 2u, 5u, 4u, 0u, 3u}) {
        const MaterializedNode node = remat.materialize(id);
        ASSERT_NE(node.sys, nullptr);
        const std::vector<StepChoice> script = remat.script_of(id);
        expect_matches_direct_replay(algorithm, n, inputs, plan, *node.sys,
                                     script,
                                     "node " + std::to_string(id));
        // The mhash cache must mirror the live buffers exactly.
        ASSERT_EQ(node.mhash->size(), static_cast<std::size_t>(n));
        for (ProcessId p = 1; p <= n; ++p) {
            const auto& buf = node.sys->buffer(p);
            ASSERT_EQ((*node.mhash)[p - 1].size(), buf.size());
            for (std::size_t i = 0; i < buf.size(); ++i)
                EXPECT_EQ((*node.mhash)[p - 1][i],
                          test_msg_hash(buf[i].from, buf[i].payload));
            EXPECT_EQ((*node.marks)[p - 1].stepped,
                      node.sys->steps_of(p) > 0);
        }
    }
}

TEST(Rematerializer, ScriptOfRootIsEmpty) {
    algo::FloodingKSet algorithm(2);
    StoreOptions opt;
    DeltaStore deltas(opt);
    deltas.append(DeltaRecord{});
    Rematerializer remat(algorithm, 3, distinct_inputs(3), FailurePlan{},
                         deltas, &test_msg_hash);
    EXPECT_TRUE(remat.script_of(0).empty());
    const MaterializedNode root = remat.materialize(0);
    for (ProcessId p = 1; p <= 3; ++p) EXPECT_EQ(root.sys->steps_of(p), 0);
}

// ------------------------------------- fork + fault-injection round-trip

/// The delta re-fork machinery leans on System::fork() copying EVERY
/// piece of state a later step can observe -- including the effective
/// FailurePlan extensions and forged-id bookkeeping that Byzantine
/// fault actions mutate.  This drives an n=5 run with corruption and
/// equivocation faults, forks mid-run, and requires the fork and the
/// original to stay bit-identical under the same continuation.
TEST(SystemFork, ByzantineFaultRoundTripAtN5) {
    auto algorithm = algo::make_flp_kset(5, 1);
    const int n = 5;
    const std::vector<Value> inputs = distinct_inputs(n);
    System sys(*algorithm, n, inputs, FailurePlan{});
    sys.set_recording(false);

    // Everyone takes a first step: five broadcasts in flight.
    for (ProcessId p = 1; p <= n; ++p) {
        StepChoice c;
        c.process = p;
        sys.apply_choice(c);
    }
    ASSERT_GE(sys.buffer(2).size(), 2u);

    // Step with a corruption fault: p1's message to p2 is forged.
    {
        const Message& victim = sys.buffer(2).front();
        StepChoice c;
        c.process = 2;
        FaultAction a;
        a.kind = FaultAction::Kind::kCorruptMessage;
        a.message = victim.id;
        a.corrupt_seed = 41;
        c.faults.push_back(a);
        c.deliver.push_back(corrupted_message_id(victim.id));
        sys.apply_choice(c);
    }

    // Fork, then apply an equivocation fault plus identical follow-up
    // steps to BOTH systems.
    std::unique_ptr<System> forked = sys.fork(/*verify_digests=*/true);
    auto equivocate_then_step = [n](System& s) {
        const Message& anchor = s.buffer(3).front();
        StepChoice c;
        c.process = 3;
        FaultAction a;
        a.kind = FaultAction::Kind::kEquivocate;
        a.message = anchor.id;
        a.corrupt_seed = 97;
        c.faults.push_back(a);
        c.deliver.push_back(equivocated_message_id(anchor.id, 3));
        s.apply_choice(c);
        for (ProcessId p = 1; p <= n; ++p) {
            StepChoice follow;
            follow.process = p;
            follow.deliver_all = true;
            s.apply_choice(follow);
        }
    };
    equivocate_then_step(sys);
    equivocate_then_step(*forked);

    for (ProcessId p = 1; p <= n; ++p) {
        EXPECT_EQ(sys.last_digest(p), forked->last_digest(p)) << p;
        EXPECT_EQ(sys.steps_of(p), forked->steps_of(p)) << p;
        EXPECT_EQ(sys.decision_of(p), forked->decision_of(p)) << p;
        const auto& a = sys.buffer(p);
        const auto& b = forked->buffer(p);
        ASSERT_EQ(a.size(), b.size()) << p;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].id, b[i].id);
            EXPECT_TRUE(a[i].payload == b[i].payload);
        }
    }
    // Both recorded the same realized Byzantine senders (p1 corrupted,
    // p-of-anchor equivocated; the others stayed clean).
    for (ProcessId p = 1; p <= n; ++p)
        EXPECT_EQ(sys.plan().is_byzantine(p), forked->plan().is_byzantine(p))
                << p;
}

// ------------------------------------------ end-to-end forced spill

void expect_identical_results(const core::ExploreResult& a,
                              const core::ExploreResult& b,
                              const std::string& label) {
    EXPECT_EQ(a.states_explored, b.states_explored) << label;
    EXPECT_EQ(a.schedules_expanded, b.schedules_expanded) << label;
    EXPECT_EQ(a.exhaustive, b.exhaustive) << label;
    EXPECT_EQ(a.violation_found, b.violation_found) << label;
    EXPECT_EQ(a.dedup_hits, b.dedup_hits) << label;
    EXPECT_EQ(a.quiescent_outcomes, b.quiescent_outcomes) << label;
    EXPECT_EQ(a.reachable_decision_sets, b.reachable_decision_sets) << label;
    ASSERT_EQ(a.witness.size(), b.witness.size()) << label;
    for (std::size_t i = 0; i < a.witness.size(); ++i) {
        EXPECT_EQ(a.witness[i].process, b.witness[i].process) << label;
        EXPECT_EQ(a.witness[i].deliver, b.witness[i].deliver) << label;
    }
}

TEST(StoreExploration, ForcedSpillIsByteIdenticalToInRam) {
    auto algorithm = algo::make_flp_kset(3, 1);
    core::ExploreConfig cfg;
    cfg.n = 3;
    cfg.inputs = distinct_inputs(3);
    cfg.k = 1;
    cfg.max_depth = 12;
    cfg.max_states = 400000;
    for (const auto mode :
         {core::ExploreMode::kFast, core::ExploreMode::kReduced}) {
        cfg.mode = mode;
        cfg.store = StoreOptions{};  // defaults: never spills at this scale
        const core::ExploreResult in_ram =
                core::explore_schedules(*algorithm, cfg);
        EXPECT_EQ(in_ram.spilled_records, 0u);

        cfg.store.frontier_ram_bytes = 1024;  // 64-record window
        cfg.store.expand_block = 3;
        cfg.store.shard_bits = 1;
        const core::ExploreResult spilled =
                core::explore_schedules(*algorithm, cfg);
        EXPECT_GT(spilled.spilled_records, 0u);
        EXPECT_GT(spilled.spill_reads, 0u);
        expect_identical_results(
                in_ram, spilled,
                mode == core::ExploreMode::kFast ? "fast" : "reduced");
    }
}

TEST(StoreExploration, PeakResidentBytesIsBounded) {
    // The observability contract of the memory ceiling: with a tiny
    // frontier budget the delta window must stay near the budget, so
    // peak_resident_bytes is dominated by the visited tier, not the
    // frontier.
    auto algorithm = algo::make_flp_kset(3, 1);
    core::ExploreConfig cfg;
    cfg.n = 3;
    cfg.inputs = distinct_inputs(3);
    cfg.k = 1;
    cfg.max_depth = 10;
    cfg.max_states = 400000;
    cfg.store.frontier_ram_bytes = 1024;
    const core::ExploreResult r = core::explore_schedules(*algorithm, cfg);
    EXPECT_GT(r.peak_resident_bytes, 0u);
    EXPECT_GT(r.states_explored, 1000u);
    // Frontier share of the peak: at most the budget plus one block of
    // growth slack (vector doubling), far below an unspilled frontier
    // (16 bytes * states would exceed 100 KB alone).
    EXPECT_LT(r.peak_resident_bytes,
              r.states_explored * sizeof(DeltaRecord) +
                      r.states_explored * sizeof(Digest128) * 4);
}

}  // namespace
}  // namespace ksa::store
