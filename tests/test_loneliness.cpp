// Tests for the loneliness detector L and the executable equivalence
// with Sigma_{n-1}.

#include <gtest/gtest.h>

#include "fd/loneliness.hpp"
#include "fd/sources.hpp"

namespace ksa::fd {
namespace {

ksa::Run history_run(int n, FailurePlan plan, std::vector<FdEvent> events) {
    ksa::Run run;
    run.n = n;
    run.plan = std::move(plan);
    run.inputs = std::vector<Value>(n, 0);
    run.fd_history = std::move(events);
    return run;
}

FdSample quorum_only(std::vector<ProcessId> q) { return FdSample{std::move(q), {}}; }

TEST(Loneliness, AloneSampleDetection) {
    EXPECT_TRUE(is_alone_sample(quorum_only({3}), 3));
    EXPECT_FALSE(is_alone_sample(quorum_only({3}), 2));
    EXPECT_FALSE(is_alone_sample(quorum_only({1, 3}), 3));
    EXPECT_FALSE(is_alone_sample(quorum_only({}), 3));
}

TEST(Loneliness, L1RejectsEveryoneAlone) {
    ksa::Run run = history_run(3, {}, {
        {1, 1, quorum_only({1})},
        {2, 2, quorum_only({2})},
        {3, 3, quorum_only({3})},
    });
    EXPECT_FALSE(validate_loneliness(run).ok);
}

TEST(Loneliness, L1AcceptsNMinus1Alone) {
    ksa::Run run = history_run(3, {}, {
        {1, 1, quorum_only({1, 2, 3})},
        {2, 2, quorum_only({2})},
        {3, 3, quorum_only({3})},
    });
    EXPECT_TRUE(validate_loneliness(run).ok);
}

TEST(Loneliness, L2RequiresSoleSurvivorToEndAlone) {
    FailurePlan plan;
    plan.set_initially_dead(1);
    plan.set_initially_dead(2);
    ksa::Run bad = history_run(3, plan, {
        {5, 3, quorum_only({1, 2, 3})},  // final sample not alone
    });
    EXPECT_FALSE(validate_loneliness(bad).ok);
    ksa::Run good = history_run(3, plan, {
        {5, 3, quorum_only({1, 2, 3})},  // early non-alone is fine...
        {9, 3, quorum_only({3})},        // ...final alone
    });
    EXPECT_TRUE(validate_loneliness(good).ok);
}

TEST(Loneliness, SigmaRoundTripEquivalence) {
    // A valid Sigma_{n-1} history: p2..pn alone, p1 paired with p2.
    const int n = 4;
    ksa::Run run = history_run(n, {}, {
        {1, 1, quorum_only({1, 2})},
        {2, 2, quorum_only({2})},
        {3, 3, quorum_only({3})},
        {4, 4, quorum_only({4})},
    });
    ASSERT_TRUE(validate_sigma_k(run, n - 1).ok);
    FdValidation v = check_sigma_loneliness_equivalence(run);
    EXPECT_TRUE(v.ok) << (v.violations.empty() ? "" : v.violations[0]);
}

TEST(Loneliness, RewriteNormalizesNonAloneToFullSet) {
    ksa::Run run = history_run(3, {}, {{1, 2, quorum_only({2, 3})}});
    ksa::Run as_l = transform_history(run, loneliness_from_sigma(3));
    EXPECT_EQ(as_l.fd_history[0].sample.quorum,
              (std::vector<ProcessId>{1, 2, 3}));
    ksa::Run back = transform_history(as_l, sigma_from_loneliness(3));
    EXPECT_EQ(back.fd_history[0].sample.quorum,
              (std::vector<ProcessId>{1, 2, 3}));
}

TEST(Loneliness, EquivalenceRejectsInvalidInput) {
    // An all-singletons history is not Sigma_{n-1}-valid; the
    // equivalence check refuses to start from it.
    ksa::Run run = history_run(3, {}, {
        {1, 1, quorum_only({1})},
        {2, 2, quorum_only({2})},
        {3, 3, quorum_only({3})},
    });
    EXPECT_THROW(check_sigma_loneliness_equivalence(run), UsageError);
}

TEST(Loneliness, BenignOracleHistoriesAreLHistories) {
    // The correct-set quorum with a sole survivor produces a valid L
    // history through the rewrite.
    FailurePlan plan;
    plan.set_initially_dead(1);
    plan.set_initially_dead(2);
    CorrectSetQuorum q(3, plan);
    QueryContext ctx;
    ctx.querier = 3;
    ctx.now = 4;
    ksa::Run run = history_run(3, plan, {{4, 3, FdSample{q.quorum(ctx), {}}}});
    ksa::Run as_l = transform_history(run, loneliness_from_sigma(3));
    EXPECT_TRUE(validate_loneliness(as_l).ok);
}

}  // namespace
}  // namespace ksa::fd
