#pragma once
// PLANTED VIOLATION (layering): the engine layer reaching UP into the
// proof-construction layer.  layers.def has no sim -> core edge, so
// ksa_analyze must flag the include on line 5.
#include "core/stub.hpp"

namespace fixture {
inline int engine_peeking_at_core() { return fixture::core_stub(); }
}  // namespace fixture
