#pragma once
// The innocent include target of the layering fixture: a `core` file is
// allowed to exist; the violation is the sim -> core edge pointing at
// it.

namespace fixture {
inline int core_stub() { return 42; }
}  // namespace fixture
