// PLANTED VIOLATION (lock-discipline): `hits` is annotated
// guarded_by(mu) and `record` duly takes the lock, but `peek` reads
// the member with no lock at all.  Flagged on line 19.
#include <cstddef>
#include <mutex>

namespace fixture {

struct Counter {
    std::mutex mu;
    std::size_t hits = 0;  // ksa: guarded_by(mu)

    void record() {
        std::lock_guard<std::mutex> lock(mu);
        ++hits;
    }

    std::size_t peek() const {
        return hits;  // never locks mu: the planted violation
    }
};

}  // namespace fixture
