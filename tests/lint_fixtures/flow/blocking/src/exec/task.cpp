// PLANTED VIOLATIONS (blocking-in-task): the body below promises
// `ksa: wait_free` yet takes a mutex (line 13) and heap-allocates
// (line 14) -- either can stall the chunk and convoy the pool.
#include <memory>
#include <mutex>

namespace fixture {

std::mutex mu;

// ksa: wait_free -- hot-path task body; must never block or allocate.
inline int hot_task(int value) {
    std::lock_guard<std::mutex> lock(mu);
    auto boxed = std::make_unique<int>(value);
    return *boxed + 1;
}

}  // namespace fixture
