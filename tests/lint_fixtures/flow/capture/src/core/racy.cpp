// PLANTED VIOLATION (parallel-capture-mutation): the lambda handed to
// parallel_map_deterministic below writes `total`, captured by
// reference, from every worker at once -- no lock, no atomic, no
// per-index slot.  The sum is a data race AND its value depends on
// execution order, so two runs need not agree.  Flagged on line 13.
#include <cstddef>

namespace fixture {

inline std::size_t racy_sum(std::size_t n) {
    std::size_t total = 0;
    parallel_map_deterministic(4, n, [&](std::size_t i) {
        total += i;
    });
    return total;
}

}  // namespace fixture
