#pragma once
// PLANTED VIOLATION (lock-discipline): a src/exec public header
// declares an entry point with no `ksa:` thread-safety annotation
// (thread_safe / guarded_by / wait_free).  Every exec entry point must
// state its concurrency contract.  Flagged on line 11.
#include <cstddef>

namespace fixture {

/// Documented but unannotated: no thread-safety contract is stated.
void submit_all(std::size_t count);

}  // namespace fixture
