// PLANTED VIOLATIONS (nondet-iteration-reaches-output): both loops
// below iterate a hash-ordered map and feed the visited values into
// the digest fold vocabulary -- the first directly, the second through
// the helper mix() -- so the folded bytes depend on hash-table
// iteration order, which no standard pins down.  Flagged on lines 23
// and 31.
#include <cstddef>
#include <unordered_map>

namespace fixture {

inline std::size_t fold(std::size_t digest, std::size_t value) {
    return digest * 1099511628211ULL + value;
}

inline std::size_t mix(std::size_t digest, std::size_t value) {
    return fold(digest, value);
}

inline std::size_t direct_fold() {
    std::unordered_map<int, std::size_t> weights = {{1, 2}, {3, 4}};
    std::size_t digest = 0;
    for (const auto& entry : weights)
        digest = fold(digest, entry.second);
    return digest;
}

inline std::size_t helper_fold() {
    std::unordered_map<int, std::size_t> weights = {{1, 2}, {3, 4}};
    std::size_t digest = 0;
    for (const auto& entry : weights)
        digest = mix(digest, entry.second);
    return digest;
}

}  // namespace fixture
