#pragma once
// PLANTED VIOLATION (wall-clock-outside-bench): a timestamp read inside
// the engine -- its value differs on every execution, so anything
// derived from it poisons replays and digests.  Flagged on line 9.
#include <chrono>

namespace fixture {
inline long long engine_timestamp() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace fixture
