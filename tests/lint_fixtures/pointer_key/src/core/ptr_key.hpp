#pragma once
// PLANTED VIOLATION (pointer-keyed-container): a std::map keyed on a
// raw pointer -- ordered iteration follows ADDRESS order, which ASLR
// reshuffles on every execution.  Flagged on line 10.  The pointer
// MAPPED VALUE on line 13 is legal: iteration still follows the key.
#include <map>

namespace fixture {
struct Process;
using BadTable = std::map<Process*, int>;

// Pointer as mapped value: fine, and must NOT be flagged.
using GoodTable = std::map<int, Process*>;
}  // namespace fixture
