#pragma once
// The second half of the include cycle (see cycle_a.hpp).
#include "sim/cycle_a.hpp"

namespace fixture {
struct B {
    int from_a = 0;
};
}  // namespace fixture
