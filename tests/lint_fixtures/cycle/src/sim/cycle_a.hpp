#pragma once
// PLANTED VIOLATION (include-cycle): cycle_a <-> cycle_b.  Both edges
// are same-layer (sim -> sim), so the layering pass is silent; only the
// SCC pass can see the cycle.  Reported at this file's include of the
// other cycle member (line 6).
#include "sim/cycle_b.hpp"

namespace fixture {
struct A {
    int from_b = 0;
};
}  // namespace fixture
