#pragma once
// PLANTED VIOLATION (frontier-growth-outside-store): a std::vector of
// DeltaRecord in src/core/ -- a frontier container outside the store
// layer grows with the explored state count and bypasses the RAM
// ceiling and spill discipline.  Flagged on line 11; the deque on
// line 14 is the same violation through the other container.
#include <deque>
#include <vector>

namespace fixture {
std::vector<store::DeltaRecord> bad_frontier;

// The deque spelling must be caught too.
std::deque<DeltaRecord> also_bad;

// Holding ONE record by value is fine; only amassing them is flagged.
inline int depth_of(DeltaRecord rec) { return static_cast<int>(rec.parent); }

// A bounded scratch buffer with the sanctioned annotation: not flagged.
// ksa-lint: allow(frontier-growth-outside-store)
std::vector<DeltaRecord> block_scratch;
}  // namespace fixture
