#pragma once
// PLANTED VIOLATION (float-in-digest, transitive form): no direct
// digest include, but this file REACHES sim/digest.hpp through
// uses_digest.hpp AND names the hasher vocabulary (StateHasher below),
// so the pass must treat it as digest-feeding.  Flagged on line 10.
#include "core/uses_digest.hpp"

namespace fixture {
inline void fold_weight(StateHasher& h) {
    double w = leaky_weight();
    h.fold(static_cast<unsigned long long>(w * 1000));
}
}  // namespace fixture
