#pragma once
// PLANTED VIOLATION (float-in-digest): this file DIRECTLY includes the
// digest header and then traffics in a double -- NaN payloads, signed
// zeros and x87 excess precision make its bit pattern
// environment-dependent, so folding it would break bit-identical
// replay.  Flagged on line 10.
#include "sim/digest.hpp"

namespace fixture {
inline double leaky_weight() { return 0.5; }

inline fixture::Digest128 digest_of_weight() {
    return fixture::Digest128{};
}
}  // namespace fixture
