#pragma once
// Fixture stand-in for the real sim/digest.hpp: defines the hasher
// vocabulary the float-in-digest pass keys on.  The rule exempts this
// file itself (the hasher defines the vocabulary).
#include <cstdint>

namespace fixture {
struct Digest128 {
    std::uint64_t hi = 0, lo = 0;
};
struct StateHasher {
    void fold(std::uint64_t) {}
};
}  // namespace fixture
