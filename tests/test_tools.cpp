// Tests for the tooling layer: DOT export, certification reports and
// valence classification.

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "algo/quorum_leader_kset.hpp"
#include "core/report.hpp"
#include "core/theorem10.hpp"
#include "core/theorem2.hpp"
#include "core/theorem8.hpp"
#include "core/valence.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "sim/dot_export.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace ksa {
namespace {

// --------------------------------------------------------------- DOT export

TEST(DotExport, RunDiagramContainsLanesArrowsAndDecisions) {
    algo::FloodingKSet algorithm(2);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, rr);
    std::string dot = run_to_dot(run);
    EXPECT_NE(dot.find("digraph run"), std::string::npos);
    EXPECT_NE(dot.find("p1_0"), std::string::npos);       // lane anchor
    EXPECT_NE(dot.find("VAL(1,1)"), std::string::npos);   // message label
    EXPECT_NE(dot.find("palegreen"), std::string::npos);  // decision fill
}

TEST(DotExport, CrashIsHighlighted) {
    algo::FloodingKSet algorithm(2);
    FailurePlan plan;
    plan.set_crash(1, CrashSpec{1, {}});
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), plan, rr);
    EXPECT_NE(run_to_dot(run).find("lightcoral"), std::string::npos);
}

TEST(DotExport, OptionsAreRespected) {
    algo::FloodingKSet algorithm(2);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, rr);
    DotOptions quiet;
    quiet.show_payloads = false;
    EXPECT_EQ(run_to_dot(run, quiet).find("VAL(1,1)"), std::string::npos);
    DotOptions digesty;
    digesty.show_digests = true;
    EXPECT_NE(run_to_dot(run, digesty).find("FL(p1"), std::string::npos);
}

TEST(DotExport, DigraphWithHighlight) {
    graph::Digraph g = graph::random_min_indegree(6, 2, 3);
    auto sources = graph::source_components(g);
    ASSERT_FALSE(sources.empty());
    std::string dot = graph::digraph_to_dot(g, sources.front());
    EXPECT_NE(dot.find("digraph g"), std::string::npos);
    EXPECT_NE(dot.find("gold"), std::string::npos);
}

// ------------------------------------------------------------------ reports

TEST(Reports, Theorem2ReportIsComplete) {
    algo::FloodingKSet candidate(2);
    core::Theorem2Result result = core::run_theorem2(candidate, 5, 3, 2);
    std::string report = core::render_report(result);
    EXPECT_NE(report.find("Theorem 2 at (n, f, k) = (5, 3, 2)"),
              std::string::npos);
    EXPECT_NE(report.find("condition (A)"), std::string::npos);
    EXPECT_NE(report.find("witnessed"), std::string::npos);
    EXPECT_NE(report.find("| p1 |"), std::string::npos);
    EXPECT_EQ(report.find("FAILED"), std::string::npos);
}

TEST(Reports, Theorem8BorderReport) {
    auto algorithm = algo::make_flp_kset(6, 4);
    core::Theorem8Border border = core::theorem8_border(*algorithm, 6, 2);
    std::string report = core::render_report(border);
    EXPECT_NE(report.find("3 groups pasted"), std::string::npos);
    EXPECT_NE(report.find("verified per Definition 2"), std::string::npos);
}

TEST(Reports, Theorem10ReportMentionsLemma9) {
    algo::QuorumLeaderKSet candidate;
    core::Theorem10Result result = core::run_theorem10(candidate, 5, 2);
    std::string report = core::render_report(result);
    EXPECT_NE(report.find("Lemma 9"), std::string::npos);
    EXPECT_EQ(report.find("INVALID"), std::string::npos);
}

// ------------------------------------------------------------------ valence

TEST(Valence, TrivialAlgorithmIsAlwaysUnivalentPerProcess) {
    algo::TrivialWaitFree algorithm;
    core::ValenceResult v = core::classify_valence(
        algorithm, 2, {0, 1}, core::one_crash_plans(2), 6);
    // Both 0 and 1 get decided (by their owners) -- but as a *set
    // agreement* outcome, not consensus; valence over decisions is {0,1}.
    EXPECT_TRUE(v.exhaustive);
    EXPECT_EQ(v.reachable, (std::set<Value>{0, 1}));
}

TEST(Valence, MixedInputsAreBivalentForBothCandidates) {
    // FLP Lemma 2, executable: mixed binary inputs are bivalent (the
    // adversary's crash choice steers the decision) -- for the flawed
    // flooding candidate AND for the correct initial-crash protocol.
    algo::FloodingKSet flooding(2);  // n=3, f=1
    core::BivalenceSweep fl = core::binary_input_sweep(
        flooding, 3, core::one_crash_plans(3), 10);
    EXPECT_TRUE(fl.exhaustive) << fl.summary();
    EXPECT_GT(fl.bivalent, 0) << fl.summary();
    // All-equal inputs are univalent by validity.
    EXPECT_FALSE(fl.rows.front().second.bivalent());  // (0,0,0)
    EXPECT_FALSE(fl.rows.back().second.bivalent());   // (1,1,1)

    auto flp = algo::make_flp_kset(3, 1);
    core::BivalenceSweep ok = core::binary_input_sweep(
        *flp, 3, core::one_crash_plans(3), 12);
    EXPECT_GT(ok.bivalent, 0) << ok.summary();
}

TEST(Valence, TheDichotomyIsViolationsNotBivalence) {
    // What separates the correct protocol from the flawed candidate is
    // not bivalence but reachable violations: per plan, every quiescent
    // outcome of the FLP protocol is internally consistent, while
    // flooding reaches outcomes with two decided values in one run.
    auto flp = algo::make_flp_kset(3, 1);
    algo::FloodingKSet flooding(2);
    for (const FailurePlan& plan : core::one_crash_plans(3)) {
        core::ExploreConfig cfg;
        cfg.n = 3;
        cfg.inputs = {0, 1, 1};
        cfg.plan = plan;
        cfg.k = 1;
        cfg.max_depth = 12;
        core::ExploreResult good = core::explore_schedules(*flp, cfg);
        EXPECT_FALSE(good.violation_found) << good.summary();
        EXPECT_TRUE(good.exhaustive);
    }
    core::ExploreConfig cfg;
    cfg.n = 3;
    cfg.inputs = {0, 1, 1};
    cfg.k = 1;
    cfg.max_depth = 12;
    core::ExploreResult bad = core::explore_schedules(flooding, cfg);
    EXPECT_TRUE(bad.violation_found) << bad.summary();
}

TEST(Valence, PlanFamilyGenerator) {
    auto plans = core::one_crash_plans(4);
    EXPECT_EQ(plans.size(), 5u);
    EXPECT_EQ(plans[0].num_faulty(), 0);
    EXPECT_TRUE(plans[3].is_initially_dead(3));
}

}  // namespace
}  // namespace ksa
