// Tests for the extension features: One-Third-Rule, the lockstep
// (synchronous-processes) scheduler and the literal Theorem 2 witness.

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "algo/one_third_rule.hpp"
#include "core/kset_spec.hpp"
#include "core/theorem2.hpp"
#include "sim/admissibility.hpp"
#include "sim/rounds.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace ksa {
namespace {

// --------------------------------------------------------- one-third rule

TEST(OneThirdRule, DecidesInOneGoodRound) {
    algo::OneThirdRule algorithm;
    ho::FullHo full;
    ho::HoRun run = execute_ho(algorithm, 4, {5, 5, 5, 9}, full, 8);
    // 3 of 4 processes propose 5 > 2n/3: decided in round 1.
    for (ProcessId p = 1; p <= 4; ++p) EXPECT_EQ(run.decision_of(p), 5);
    EXPECT_EQ(run.rounds_executed, 1);
}

TEST(OneThirdRule, ConvergesFromSplitInputs) {
    algo::OneThirdRule algorithm;
    ho::FullHo full;
    ho::HoRun run = execute_ho(algorithm, 3, {1, 2, 3}, full, 8);
    EXPECT_EQ(run.distinct_decisions().size(), 1u);
    EXPECT_EQ(*run.decision_of(1), 1);  // smallest most-frequent wins
}

TEST(OneThirdRule, SafeUnderCrashNoise) {
    algo::OneThirdRule algorithm;
    ho::CrashHo adversary;
    adversary.set_crash(4, {1, {1, 2}});
    ho::HoRun run = execute_ho(algorithm, 4, {7, 3, 3, 1}, adversary, 16);
    std::set<Value> decisions = run.distinct_decisions();
    EXPECT_LE(decisions.size(), 1u);
}

TEST(OneThirdRule, PartitionBlocksNeverDecideButNeverDisagree) {
    // The partition adversary cannot split 1/3-rule: blocks smaller than
    // 2n/3 never decide.  The Theorem 1 trap fails at (dec-Dbar) --
    // which is exactly how a safe algorithm escapes.
    algo::OneThirdRule algorithm;
    ho::PartitionHo partition({{1, 2}, {3, 4}, {5, 6}}, 0);
    ho::HoRun run = execute_ho(algorithm, 6, distinct_inputs(6), partition, 20);
    EXPECT_TRUE(run.distinct_decisions().empty());
    // With the partition healed after round 2, everybody decides one value.
    ho::PartitionHo healing({{1, 2}, {3, 4}, {5, 6}}, 2);
    ho::HoRun healed =
        execute_ho(algorithm, 6, distinct_inputs(6), healing, 20);
    EXPECT_EQ(healed.distinct_decisions().size(), 1u);
}

// ---------------------------------------------------------------- lockstep

TEST(Lockstep, EveryLiveProcessStepsOncePerCycle) {
    algo::FloodingKSet algorithm(3);
    LockstepScheduler sched;  // no filter: deliver everything
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, sched);
    // In the first 3 steps each process stepped exactly once, in order.
    ASSERT_GE(run.steps.size(), 3u);
    EXPECT_EQ(run.steps[0].process, 1);
    EXPECT_EQ(run.steps[1].process, 2);
    EXPECT_EQ(run.steps[2].process, 3);
    core::expect_kset_agreement(run, 1);
}

TEST(Lockstep, RealizesCrashPlans) {
    algo::FloodingKSet algorithm(2);
    FailurePlan plan;
    plan.set_crash(2, CrashSpec{1, {3}});
    LockstepScheduler sched;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), plan, sched);
    EXPECT_EQ(run.steps_of(2), 1);
    EXPECT_TRUE(check_admissibility(run).admissible);
}

TEST(Lockstep, FilterDelaysDelivery) {
    algo::FloodingKSet algorithm(2);
    // Nothing is delivered until everyone decided... which for a
    // threshold-2 flooding protocol never happens on own messages alone;
    // instead: allow only messages from smaller ids.
    LockstepScheduler sched(
        [](const Message& m, ProcessId dest, const SystemView&) {
            return m.from < dest;
        });
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, sched,
                               nullptr, {.max_steps = 400});
    // p2 and p3 hear p1 and decide 1; p1 hears nobody smaller: step limit.
    EXPECT_EQ(run.decision_of(2), 1);
    EXPECT_EQ(run.decision_of(3), 1);
    EXPECT_FALSE(run.decision_of(1).has_value());
}

// ----------------------------------------- Theorem 2 under the letter of M

struct LockstepPoint {
    int n, f, k;
};

class Theorem2LockstepSweep : public ::testing::TestWithParam<LockstepPoint> {};

TEST_P(Theorem2LockstepSweep, SynchronousProcessesStillViolate) {
    const auto [n, f, k] = GetParam();
    algo::FloodingKSet candidate(n - f);
    core::Theorem2Lockstep r =
        core::run_theorem2_lockstep(candidate, n, f, k);
    EXPECT_TRUE(r.dec_dbar) << r.summary();
    EXPECT_TRUE(r.violation) << r.summary();
    EXPECT_GT(r.values.size(), static_cast<std::size_t>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem2LockstepSweep,
    ::testing::Values(LockstepPoint{5, 3, 2}, LockstepPoint{7, 4, 2},
                      LockstepPoint{7, 5, 3}, LockstepPoint{9, 6, 2},
                      LockstepPoint{10, 8, 4}, LockstepPoint{4, 2, 1}));

}  // namespace
}  // namespace ksa
