// Golden equivalence suite for the three exploration engines.
//
// core/explorer.hpp promises that kFast (snapshot stepping + ghost
// hashing), kReference (snapshot stepping + canonical strings) and
// kReplayBaseline (the pre-snapshot engine, kept verbatim) produce
// IDENTICAL ExploreResults on every configuration -- same state count,
// same expansion count, same exhaustiveness, same witness schedule step
// for step, same quiescent outcomes and decision sets -- and that the
// fast engine's result is additionally byte-identical across thread
// counts.  This suite is the enforcement: every bench_model_check case,
// a chaos-style crash plan with final-step omissions, and a max_states
// truncation case (where any divergence in insertion *order* becomes a
// divergence in *content*) run through all engines.
//
// If the fast engine's ghost stepping or hash keying ever drifts from
// the real transition semantics, it shows up here as a state-count or
// witness mismatch long before anybody trusts a speedup number.

#include <gtest/gtest.h>

#include <string>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "core/explorer.hpp"
#include "sim/system.hpp"

namespace ksa::core {
namespace {

void expect_equal_results(const ExploreResult& a, const ExploreResult& b,
                          const std::string& label) {
    EXPECT_EQ(a.states_explored, b.states_explored) << label;
    EXPECT_EQ(a.schedules_expanded, b.schedules_expanded) << label;
    EXPECT_EQ(a.exhaustive, b.exhaustive) << label;
    EXPECT_EQ(a.violation_found, b.violation_found) << label;
    EXPECT_EQ(a.quiescent_outcomes, b.quiescent_outcomes) << label;
    EXPECT_EQ(a.reachable_decision_sets, b.reachable_decision_sets) << label;
    ASSERT_EQ(a.witness.size(), b.witness.size()) << label;
    for (std::size_t i = 0; i < a.witness.size(); ++i) {
        EXPECT_EQ(a.witness[i].process, b.witness[i].process)
                << label << " witness step " << i;
        EXPECT_EQ(a.witness[i].deliver, b.witness[i].deliver)
                << label << " witness step " << i;
        EXPECT_EQ(a.witness[i].deliver_all, b.witness[i].deliver_all)
                << label << " witness step " << i;
    }
}

/// Runs `cfg` through every engine (and the fast engine through two
/// thread counts) and requires identical results.  Returns the baseline
/// result for case-specific assertions.
ExploreResult expect_all_engines_agree(const Algorithm& algorithm,
                                       ExploreConfig cfg,
                                       const std::string& label) {
    cfg.mode = ExploreMode::kReplayBaseline;
    const ExploreResult baseline = explore_schedules(algorithm, cfg);
    cfg.mode = ExploreMode::kReference;
    cfg.threads = 1;
    const ExploreResult reference = explore_schedules(algorithm, cfg);
    cfg.mode = ExploreMode::kFast;
    cfg.threads = 1;
    const ExploreResult fast1 = explore_schedules(algorithm, cfg);
    cfg.threads = 4;
    const ExploreResult fast4 = explore_schedules(algorithm, cfg);
    expect_equal_results(baseline, reference, label + ": baseline vs reference");
    expect_equal_results(baseline, fast1, label + ": baseline vs fast(1)");
    expect_equal_results(fast1, fast4, label + ": fast(1) vs fast(4)");
    return baseline;
}

ExploreConfig base_config(int n, int k, int depth) {
    ExploreConfig cfg;
    cfg.n = n;
    cfg.inputs = distinct_inputs(n);
    cfg.k = k;
    cfg.max_depth = depth;
    cfg.max_states = 400000;
    return cfg;
}

TEST(ExplorerEquivalence, FloodingConsensusViolation) {
    algo::FloodingKSet algorithm(2);
    const ExploreResult r = expect_all_engines_agree(
            algorithm, base_config(3, 1, 9), "flooding k=1");
    EXPECT_TRUE(r.violation_found);
}

TEST(ExplorerEquivalence, FloodingTwoSetHolds) {
    algo::FloodingKSet algorithm(2);
    const ExploreResult r = expect_all_engines_agree(
            algorithm, base_config(3, 2, 9), "flooding k=2");
    EXPECT_FALSE(r.violation_found);
}

TEST(ExplorerEquivalence, InitialCliqueWithInitialDeath) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 14);
    cfg.plan.set_initially_dead({3});
    const ExploreResult r =
            expect_all_engines_agree(*algorithm, cfg, "flp dead{3}");
    EXPECT_FALSE(r.violation_found);
    EXPECT_TRUE(r.exhaustive);
}

TEST(ExplorerEquivalence, InitialCliqueNoCrash) {
    auto algorithm = algo::make_flp_kset(3, 1);
    const ExploreResult r = expect_all_engines_agree(
            *algorithm, base_config(3, 1, 10), "flp no crash");
    EXPECT_FALSE(r.violation_found);
}

TEST(ExplorerEquivalence, KSetGeneralization) {
    auto algorithm = algo::make_flp_kset(4, 2);
    ExploreConfig cfg = base_config(4, 2, 10);
    cfg.plan.set_initially_dead({1, 2});
    const ExploreResult r =
            expect_all_engines_agree(*algorithm, cfg, "flp k=2");
    EXPECT_FALSE(r.violation_found);
}

TEST(ExplorerEquivalence, TrivialViolatesImmediately) {
    algo::TrivialWaitFree algorithm;
    const ExploreResult r = expect_all_engines_agree(
            algorithm, base_config(3, 2, 4), "trivial");
    EXPECT_TRUE(r.violation_found);
}

// The crash plan of the chaos layer's staggered adversary: a process
// that crashes mid-run with the sends of its final step omitted to a
// strict subset of receivers.  The ghost-step key must reproduce the
// omission semantics (GhostStep::send_survives) bit-for-bit, and this
// is the case that exercises it.
TEST(ExplorerEquivalence, MidRunCrashWithOmissions) {
    algo::FloodingKSet algorithm(2);
    ExploreConfig cfg = base_config(3, 1, 9);
    cfg.plan.set_crash(1, CrashSpec{2, {3}});
    expect_all_engines_agree(algorithm, cfg, "crash omit{3}");
}

TEST(ExplorerEquivalence, MidRunCrashOmittingAll) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 12);
    cfg.plan.set_crash_omit_all(2, 1, 3);
    expect_all_engines_agree(*algorithm, cfg, "crash omit-all");
}

// max_states truncation: which states fall inside the cut depends on
// the BFS insertion order, so any ordering divergence between the
// engines -- or between thread counts -- changes states_explored,
// quiescent_outcomes or the witness.  All of them must still agree.
TEST(ExplorerEquivalence, TruncationCutsIdentically) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 14);
    cfg.max_states = 200;
    const ExploreResult r =
            expect_all_engines_agree(*algorithm, cfg, "truncated");
    EXPECT_FALSE(r.exhaustive);
    EXPECT_GT(r.states_explored, 200u);  // cut just past the cap
}

// Determinism across repeated runs of the same engine (the PR-1
// contract applied to the parallel fast path).
TEST(ExplorerEquivalence, FastModeRunToRunDeterminism) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 12);
    cfg.mode = ExploreMode::kFast;
    cfg.threads = 4;
    const ExploreResult a = explore_schedules(*algorithm, cfg);
    const ExploreResult b = explore_schedules(*algorithm, cfg);
    expect_equal_results(a, b, "fast(4) run-to-run");
}

}  // namespace
}  // namespace ksa::core
