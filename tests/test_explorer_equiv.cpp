// Golden equivalence suite for the three exploration engines.
//
// core/explorer.hpp promises that kFast (snapshot stepping + ghost
// hashing), kReference (snapshot stepping + canonical strings) and
// kReplayBaseline (the pre-snapshot engine, kept verbatim) produce
// IDENTICAL ExploreResults on every configuration -- same state count,
// same expansion count, same exhaustiveness, same witness schedule step
// for step, same quiescent outcomes and decision sets -- and that the
// fast engine's result is additionally byte-identical across thread
// counts.  This suite is the enforcement: every bench_model_check case,
// a chaos-style crash plan with final-step omissions, and a max_states
// truncation case (where any divergence in insertion *order* becomes a
// divergence in *content*) run through all engines.
//
// If the fast engine's ghost stepping or hash keying ever drifts from
// the real transition semantics, it shows up here as a state-count or
// witness mismatch long before anybody trusts a speedup number.

#include <gtest/gtest.h>

#include <string>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "core/explorer.hpp"
#include "exec/task_scheduler.hpp"
#include "sim/system.hpp"

namespace ksa::core {
namespace {

void expect_equal_results(const ExploreResult& a, const ExploreResult& b,
                          const std::string& label) {
    EXPECT_EQ(a.states_explored, b.states_explored) << label;
    EXPECT_EQ(a.schedules_expanded, b.schedules_expanded) << label;
    EXPECT_EQ(a.exhaustive, b.exhaustive) << label;
    EXPECT_EQ(a.violation_found, b.violation_found) << label;
    EXPECT_EQ(a.quiescent_outcomes, b.quiescent_outcomes) << label;
    EXPECT_EQ(a.reachable_decision_sets, b.reachable_decision_sets) << label;
    ASSERT_EQ(a.witness.size(), b.witness.size()) << label;
    for (std::size_t i = 0; i < a.witness.size(); ++i) {
        EXPECT_EQ(a.witness[i].process, b.witness[i].process)
                << label << " witness step " << i;
        EXPECT_EQ(a.witness[i].deliver, b.witness[i].deliver)
                << label << " witness step " << i;
        EXPECT_EQ(a.witness[i].deliver_all, b.witness[i].deliver_all)
                << label << " witness step " << i;
    }
}

/// Runs `cfg` through every engine (and the fast engine through two
/// thread counts) and requires identical results.  Returns the baseline
/// result for case-specific assertions.
ExploreResult expect_all_engines_agree(const Algorithm& algorithm,
                                       ExploreConfig cfg,
                                       const std::string& label) {
    cfg.mode = ExploreMode::kReplayBaseline;
    const ExploreResult baseline = explore_schedules(algorithm, cfg);
    cfg.mode = ExploreMode::kReference;
    cfg.threads = 1;
    const ExploreResult reference = explore_schedules(algorithm, cfg);
    cfg.mode = ExploreMode::kFast;
    cfg.threads = 1;
    const ExploreResult fast1 = explore_schedules(algorithm, cfg);
    expect_equal_results(baseline, reference, label + ": baseline vs reference");
    expect_equal_results(baseline, fast1, label + ": baseline vs fast(1)");
    for (const int threads : {2, 4, exec::hardware_threads()}) {
        cfg.threads = threads;
        const ExploreResult fast_n = explore_schedules(algorithm, cfg);
        expect_equal_results(fast1, fast_n,
                             label + ": fast(1) vs fast(" +
                                     std::to_string(threads) + ")");
    }
    return baseline;
}

ExploreConfig base_config(int n, int k, int depth) {
    ExploreConfig cfg;
    cfg.n = n;
    cfg.inputs = distinct_inputs(n);
    cfg.k = k;
    cfg.max_depth = depth;
    cfg.max_states = 400000;
    return cfg;
}

TEST(ExplorerEquivalence, FloodingConsensusViolation) {
    algo::FloodingKSet algorithm(2);
    const ExploreResult r = expect_all_engines_agree(
            algorithm, base_config(3, 1, 9), "flooding k=1");
    EXPECT_TRUE(r.violation_found);
}

TEST(ExplorerEquivalence, FloodingTwoSetHolds) {
    algo::FloodingKSet algorithm(2);
    const ExploreResult r = expect_all_engines_agree(
            algorithm, base_config(3, 2, 9), "flooding k=2");
    EXPECT_FALSE(r.violation_found);
}

TEST(ExplorerEquivalence, InitialCliqueWithInitialDeath) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 14);
    cfg.plan.set_initially_dead({3});
    const ExploreResult r =
            expect_all_engines_agree(*algorithm, cfg, "flp dead{3}");
    EXPECT_FALSE(r.violation_found);
    EXPECT_TRUE(r.exhaustive);
}

TEST(ExplorerEquivalence, InitialCliqueNoCrash) {
    auto algorithm = algo::make_flp_kset(3, 1);
    const ExploreResult r = expect_all_engines_agree(
            *algorithm, base_config(3, 1, 10), "flp no crash");
    EXPECT_FALSE(r.violation_found);
}

TEST(ExplorerEquivalence, KSetGeneralization) {
    auto algorithm = algo::make_flp_kset(4, 2);
    ExploreConfig cfg = base_config(4, 2, 10);
    cfg.plan.set_initially_dead({1, 2});
    const ExploreResult r =
            expect_all_engines_agree(*algorithm, cfg, "flp k=2");
    EXPECT_FALSE(r.violation_found);
}

TEST(ExplorerEquivalence, TrivialViolatesImmediately) {
    algo::TrivialWaitFree algorithm;
    const ExploreResult r = expect_all_engines_agree(
            algorithm, base_config(3, 2, 4), "trivial");
    EXPECT_TRUE(r.violation_found);
}

// The crash plan of the chaos layer's staggered adversary: a process
// that crashes mid-run with the sends of its final step omitted to a
// strict subset of receivers.  The ghost-step key must reproduce the
// omission semantics (GhostStep::send_survives) bit-for-bit, and this
// is the case that exercises it.
TEST(ExplorerEquivalence, MidRunCrashWithOmissions) {
    algo::FloodingKSet algorithm(2);
    ExploreConfig cfg = base_config(3, 1, 9);
    cfg.plan.set_crash(1, CrashSpec{2, {3}});
    expect_all_engines_agree(algorithm, cfg, "crash omit{3}");
}

TEST(ExplorerEquivalence, MidRunCrashOmittingAll) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 12);
    cfg.plan.set_crash_omit_all(2, 1, 3);
    expect_all_engines_agree(*algorithm, cfg, "crash omit-all");
}

// max_states truncation: which states fall inside the cut depends on
// the BFS insertion order, so any ordering divergence between the
// engines -- or between thread counts -- changes states_explored,
// quiescent_outcomes or the witness.  All of them must still agree.
TEST(ExplorerEquivalence, TruncationCutsIdentically) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 14);
    cfg.max_states = 200;
    const ExploreResult r =
            expect_all_engines_agree(*algorithm, cfg, "truncated");
    EXPECT_FALSE(r.exhaustive);
    EXPECT_GT(r.states_explored, 200u);  // cut just past the cap
}

// Determinism across repeated runs of the same engine (the PR-1
// contract applied to the parallel fast path).
TEST(ExplorerEquivalence, FastModeRunToRunDeterminism) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 12);
    cfg.mode = ExploreMode::kFast;
    cfg.threads = 4;
    const ExploreResult a = explore_schedules(*algorithm, cfg);
    const ExploreResult b = explore_schedules(*algorithm, cfg);
    expect_equal_results(a, b, "fast(4) run-to-run");
}

// ---------------------------------------------------------------------
// Reduced engine (ExploreMode::kReduced).
//
// kReduced explores a QUOTIENT of the configuration space, so state and
// expansion counts are allowed (expected!) to shrink; what must be
// preserved, exactly, on every exhaustive golden case, are the three
// observables: violation_found, reachable_decision_sets and
// quiescent_outcomes.  The helpers below enforce that, plus thread-count
// byte-identity of the reduced engine itself, on every golden case.

void expect_observables_equal(const ExploreResult& full,
                              const ExploreResult& reduced,
                              const std::string& label) {
    EXPECT_EQ(full.violation_found, reduced.violation_found) << label;
    EXPECT_EQ(full.reachable_decision_sets, reduced.reachable_decision_sets)
            << label;
    EXPECT_EQ(full.quiescent_outcomes, reduced.quiescent_outcomes) << label;
}

/// Runs `cfg` through kFast and through kReduced (threads 1, 2, 4 and
/// the hardware count), requires the three observables to match and
/// the reduced runs to be byte-identical across thread counts, and
/// returns (fast, reduced).
std::pair<ExploreResult, ExploreResult> expect_reduced_agrees(
        const Algorithm& algorithm, ExploreConfig cfg,
        const std::string& label) {
    cfg.mode = ExploreMode::kFast;
    cfg.threads = 1;
    const ExploreResult fast = explore_schedules(algorithm, cfg);
    cfg.mode = ExploreMode::kReduced;
    const ExploreResult red1 = explore_schedules(algorithm, cfg);
    for (const int threads : {2, 4, exec::hardware_threads()}) {
        cfg.threads = threads;
        const ExploreResult red_n = explore_schedules(algorithm, cfg);
        expect_equal_results(red1, red_n,
                             label + ": reduced(1) vs reduced(" +
                                     std::to_string(threads) + ")");
    }
    expect_observables_equal(fast, red1, label + ": fast vs reduced");
    EXPECT_LE(red1.states_explored, fast.states_explored) << label;
    return {fast, red1};
}

TEST(ReducedEquivalence, FloodingConsensusViolation) {
    algo::FloodingKSet algorithm(2);
    auto [fast, red] = expect_reduced_agrees(algorithm, base_config(3, 1, 9),
                                             "flooding k=1");
    EXPECT_TRUE(red.violation_found);
}

TEST(ReducedEquivalence, FloodingTwoSetHolds) {
    algo::FloodingKSet algorithm(2);
    auto [fast, red] = expect_reduced_agrees(algorithm, base_config(3, 2, 9),
                                             "flooding k=2");
    EXPECT_FALSE(red.violation_found);
}

TEST(ReducedEquivalence, InitialCliqueWithInitialDeath) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 14);
    cfg.plan.set_initially_dead({3});
    expect_reduced_agrees(*algorithm, cfg, "flp dead{3}");
}

// The flagship bench case ("Thm 8, no crash", depth 14, exhaustive):
// besides the observables agreeing, this is where the reduction has to
// EARN its keep -- at least 2x fewer expansions than the fast engine,
// with the skipped work visible in por_skips.  BENCH_explorer.json
// records the measured counts; this test pins the invariant so a
// regression in the reduction layer fails loudly rather than silently
// eroding the speedup.
TEST(ReducedEquivalence, FlagshipAtLeastTwofoldReduction) {
    auto algorithm = algo::make_flp_kset(3, 1);
    auto [fast, red] = expect_reduced_agrees(
            *algorithm, base_config(3, 1, 14), "flp no crash d14");
    EXPECT_TRUE(fast.exhaustive);
    EXPECT_TRUE(red.exhaustive);
    EXPECT_GE(fast.schedules_expanded, 2 * red.schedules_expanded)
            << "reduction lost its 2x on the flagship case";
    EXPECT_GT(red.por_skips, 0u);
}

TEST(ReducedEquivalence, KSetGeneralization) {
    auto algorithm = algo::make_flp_kset(4, 2);
    ExploreConfig cfg = base_config(4, 2, 10);
    cfg.plan.set_initially_dead({1, 2});
    expect_reduced_agrees(*algorithm, cfg, "flp k=2");
}

TEST(ReducedEquivalence, TrivialViolatesImmediately) {
    algo::TrivialWaitFree algorithm;
    auto [fast, red] =
            expect_reduced_agrees(algorithm, base_config(3, 2, 4), "trivial");
    EXPECT_TRUE(red.violation_found);
}

TEST(ReducedEquivalence, MidRunCrashWithOmissions) {
    algo::FloodingKSet algorithm(2);
    ExploreConfig cfg = base_config(3, 1, 9);
    cfg.plan.set_crash(1, CrashSpec{2, {3}});
    expect_reduced_agrees(algorithm, cfg, "crash omit{3}");
}

TEST(ReducedEquivalence, MidRunCrashOmittingAll) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 12);
    cfg.plan.set_crash_omit_all(2, 1, 3);
    expect_reduced_agrees(*algorithm, cfg, "crash omit-all");
}

// Uniform inputs make the whole symmetric group admissible: the
// symmetry axis alone must collapse the space by far more than the
// group order would suggest (orbits compound down the tree) while the
// orbit-expanded outcomes still match the full engine's exactly.
TEST(ReducedEquivalence, UniformInputsSymmetry) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 14);
    cfg.inputs = {7, 7, 7};
    auto [fast, red] = expect_reduced_agrees(*algorithm, cfg, "flp uniform");
    EXPECT_TRUE(fast.exhaustive);
    EXPECT_LT(red.states_explored * 3, fast.states_explored)
            << "uniform-input symmetry should shrink the space >3x";
}

// With every reduction switched off, kReduced must not merely agree --
// it must partition states exactly like kFast and reproduce its result
// bit for bit (counts, witness, everything).  This pins the identity
// quotient: reduced_hash_state/hash_child_reduced fold the same field
// sequence as the fast engine's hash_state/hash_child.
TEST(ReducedEquivalence, AllReductionsOffIsBitIdenticalToFast) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 12);
    cfg.mode = ExploreMode::kFast;
    const ExploreResult fast = explore_schedules(*algorithm, cfg);
    cfg.mode = ExploreMode::kReduced;
    cfg.reduction.symmetry = false;
    cfg.reduction.por = false;
    cfg.reduction.absorption = false;
    const ExploreResult red = explore_schedules(*algorithm, cfg);
    expect_equal_results(fast, red, "reduction-off vs fast");
    EXPECT_EQ(red.por_skips, 0u);
}

// Each reduction axis must be individually sound, not only the default
// all-on combination: sweep all 8 on/off combinations on a case with
// crashes (omission semantics) and assert the observables every time.
TEST(ReducedEquivalence, EveryAxisCombinationAgrees) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 12);
    cfg.plan.set_crash_omit_all(2, 1, 3);
    cfg.mode = ExploreMode::kFast;
    const ExploreResult fast = explore_schedules(*algorithm, cfg);
    for (int mask = 0; mask < 8; ++mask) {
        ExploreConfig rcfg = cfg;
        rcfg.mode = ExploreMode::kReduced;
        rcfg.reduction.symmetry = (mask & 1) != 0;
        rcfg.reduction.por = (mask & 2) != 0;
        rcfg.reduction.absorption = (mask & 4) != 0;
        const ExploreResult red = explore_schedules(*algorithm, rcfg);
        expect_observables_equal(fast, red,
                                 "axis mask " + std::to_string(mask));
    }
}

// A kReduced violation witness is a real schedule (frontier nodes are
// realized Systems, never merely renamed ones): replaying it step for
// step on a fresh System must reproduce a state with more than k
// distinct decisions.
TEST(ReducedEquivalence, WitnessReplaysToViolation) {
    algo::FloodingKSet algorithm(2);
    ExploreConfig cfg = base_config(3, 1, 9);
    cfg.mode = ExploreMode::kReduced;
    const ExploreResult red = explore_schedules(algorithm, cfg);
    ASSERT_TRUE(red.violation_found);
    ASSERT_FALSE(red.witness.empty());

    System sys(algorithm, cfg.n, cfg.inputs, cfg.plan);
    sys.set_recording(false);
    for (const StepChoice& choice : red.witness) sys.apply_choice(choice);
    std::set<Value> decisions;
    for (ProcessId p = 1; p <= cfg.n; ++p) {
        auto d = sys.decision_of(p);
        if (d) decisions.insert(*d);
    }
    EXPECT_GT(static_cast<int>(decisions.size()), cfg.k)
            << "reduced witness does not replay to a violation";
}

// Under max_depth truncation exact equality is NOT promised (the
// quotient can reach -- and absorb -- outcomes the depth-bounded full
// engine never gets to; doc/performance.md).  What still holds: every
// observable the truncated full engine records is genuinely reachable,
// so the exhaustive reduced run must contain it.
TEST(ReducedEquivalence, TruncatedFastIsContainedInReduced) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 10);  // fast needs 14 for exhaustion
    cfg.mode = ExploreMode::kFast;
    const ExploreResult fast = explore_schedules(*algorithm, cfg);
    cfg.mode = ExploreMode::kReduced;
    const ExploreResult red = explore_schedules(*algorithm, cfg);
    EXPECT_FALSE(fast.exhaustive);
    EXPECT_TRUE(red.exhaustive);  // the quotient closes by depth 8
    for (const auto& ds : fast.reachable_decision_sets)
        EXPECT_TRUE(red.reachable_decision_sets.count(ds) != 0)
                << "decision set seen by truncated fast missing from reduced";
    for (const auto& qo : fast.quiescent_outcomes)
        EXPECT_TRUE(red.quiescent_outcomes.count(qo) != 0)
                << "outcome seen by truncated fast missing from reduced";
}

TEST(ReducedEquivalence, RunToRunDeterminism) {
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 14);
    cfg.mode = ExploreMode::kReduced;
    cfg.threads = 4;
    const ExploreResult a = explore_schedules(*algorithm, cfg);
    const ExploreResult b = explore_schedules(*algorithm, cfg);
    expect_equal_results(a, b, "reduced(4) run-to-run");
}

// ---------------------------------------------------------------------
// Store configuration sweeps (src/store/).
//
// The out-of-core store promises that NONE of its sizing knobs -- shard
// count, bloom budget, spill budget, expansion block size -- changes
// any exploration result, and that for a FIXED store configuration the
// deterministic store counters (tier hits, spill tallies) are
// themselves byte-identical across thread counts.  (replay_steps and
// spill_reads are excluded: they depend on work distribution, like
// steal counts.)

/// expect_equal_results plus the deterministic store counters; valid
/// only when both runs used the same StoreOptions.
void expect_equal_with_store_counters(const ExploreResult& a,
                                      const ExploreResult& b,
                                      const std::string& label) {
    expect_equal_results(a, b, label);
    EXPECT_EQ(a.dedup_hits, b.dedup_hits) << label;
    EXPECT_EQ(a.store_shards, b.store_shards) << label;
    EXPECT_EQ(a.filter_definite_new, b.filter_definite_new) << label;
    EXPECT_EQ(a.filter_false_positives, b.filter_false_positives) << label;
    EXPECT_EQ(a.spilled_records, b.spilled_records) << label;
    EXPECT_EQ(a.spill_bytes, b.spill_bytes) << label;
}

/// Store configurations that must all yield the same result: defaults,
/// a single unsharded table without a filter tier, maximal sharding
/// with a spill-everything budget, and a degenerate one-node block.
std::vector<store::StoreOptions> store_sweep() {
    std::vector<store::StoreOptions> sweep(4);
    sweep[1].shard_bits = 0;
    sweep[1].filter_bits_per_key = 0;
    sweep[2].shard_bits = 8;
    sweep[2].frontier_ram_bytes = 1024;  // 64-record window: spills hard
    sweep[3].expand_block = 1;
    sweep[3].shard_bits = 1;
    sweep[3].frontier_ram_bytes = 2048;
    return sweep;
}

TEST(StoreEquivalence, EveryStoreConfigYieldsTheSameResult) {
    auto algorithm = algo::make_flp_kset(3, 1);
    for (const auto mode : {ExploreMode::kFast, ExploreMode::kReduced}) {
        ExploreConfig cfg = base_config(3, 1, 12);
        cfg.mode = mode;
        const ExploreResult baseline = explore_schedules(*algorithm, cfg);
        int i = 0;
        for (const store::StoreOptions& opt : store_sweep()) {
            cfg.store = opt;
            const ExploreResult r = explore_schedules(*algorithm, cfg);
            expect_equal_results(baseline, r,
                                 "store config " + std::to_string(i++));
        }
    }
}

TEST(StoreEquivalence, CountersAreThreadCountInvariant) {
    auto algorithm = algo::make_flp_kset(3, 1);
    for (const auto mode : {ExploreMode::kFast, ExploreMode::kReduced}) {
        int i = 0;
        for (const store::StoreOptions& opt : store_sweep()) {
            ExploreConfig cfg = base_config(3, 1, 11);
            cfg.mode = mode;
            cfg.store = opt;
            cfg.threads = 1;
            const ExploreResult one = explore_schedules(*algorithm, cfg);
            for (const int threads : {2, exec::hardware_threads()}) {
                cfg.threads = threads;
                const ExploreResult many = explore_schedules(*algorithm, cfg);
                expect_equal_with_store_counters(
                        one, many,
                        "store config " + std::to_string(i) + " threads " +
                                std::to_string(threads));
            }
            ++i;
        }
    }
}

TEST(StoreEquivalence, TruncationCutsIdenticallyUnderSpill) {
    // The sharpest determinism case and the spill path combined: which
    // states fall inside max_states must not depend on the spill
    // budget, the block size or the thread count.
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 14);
    cfg.max_states = 500;
    const ExploreResult baseline = explore_schedules(*algorithm, cfg);
    EXPECT_FALSE(baseline.exhaustive);
    cfg.store.frontier_ram_bytes = 1024;
    cfg.store.expand_block = 7;
    cfg.store.shard_bits = 2;
    for (const int threads : {1, 4}) {
        cfg.threads = threads;
        const ExploreResult r = explore_schedules(*algorithm, cfg);
        expect_equal_results(baseline, r,
                             "spilled truncation, threads " +
                                     std::to_string(threads));
    }
}

TEST(StoreEquivalence, CrashPlansSurviveRematerialization) {
    // Rematerialization replays delta chains on forked Systems; crash
    // plans (mid-run crashes with omissions) must survive the re-fork
    // byte-identically even when the chain crosses the spill file.
    auto algorithm = algo::make_flp_kset(3, 1);
    ExploreConfig cfg = base_config(3, 1, 12);
    cfg.plan.set_crash(1, CrashSpec{2, {3}});
    const ExploreResult baseline = explore_schedules(*algorithm, cfg);
    cfg.store.frontier_ram_bytes = 1024;
    cfg.store.expand_block = 5;
    const ExploreResult spilled = explore_schedules(*algorithm, cfg);
    EXPECT_GT(spilled.spilled_records, 0u);
    expect_equal_results(baseline, spilled, "crash plan under spill");
}

}  // namespace
}  // namespace ksa::core
