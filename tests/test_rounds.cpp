// Tests for the Heard-Of round model: executor, adversaries, FloodMin
// and the round-model partition argument (the Discussion section's
// conjecture, exercised).

#include <gtest/gtest.h>

#include "algo/floodmin.hpp"
#include "core/ho_argument.hpp"
#include "sim/rounds.hpp"
#include "sim/system.hpp"

namespace ksa {
namespace {

TEST(HoExecutor, FullHoConvergesInOneRound) {
    algo::FloodMin algorithm(1);
    ho::FullHo full;
    ho::HoRun run = execute_ho(algorithm, 4, {7, 3, 9, 5}, full, 4);
    EXPECT_EQ(run.rounds_executed, 1);
    for (ProcessId p = 1; p <= 4; ++p) EXPECT_EQ(run.decision_of(p), 3);
    EXPECT_EQ(run.distinct_decisions().size(), 1u);
}

TEST(HoExecutor, RecordsHeardOfSets) {
    algo::FloodMin algorithm(1);
    ho::FullHo full;
    ho::HoRun run = execute_ho(algorithm, 3, distinct_inputs(3), full, 2);
    ASSERT_EQ(run.records.size(), 3u);
    EXPECT_EQ(run.records[0].heard_of, (std::vector<ProcessId>{1, 2, 3}));
}

TEST(HoExecutor, StopsWhenAllAliveDecided) {
    algo::FloodMin algorithm(2);
    ho::FullHo full;
    ho::HoRun run = execute_ho(algorithm, 3, distinct_inputs(3), full, 50);
    EXPECT_EQ(run.rounds_executed, 2);
}

TEST(CrashHo, CrashedProcessSilencedAfterItsRound) {
    ho::CrashHo adversary;
    adversary.set_crash(1, {1, {2}});  // round 1, heard only by p2
    EXPECT_TRUE(adversary.alive(1, 1));
    EXPECT_FALSE(adversary.alive(1, 2));
    auto ho2 = adversary.heard_of(2, 1, 3);
    EXPECT_NE(std::find(ho2.begin(), ho2.end(), 1), ho2.end());
    auto ho3 = adversary.heard_of(3, 1, 3);
    EXPECT_EQ(std::find(ho3.begin(), ho3.end(), 1), ho3.end());
    auto later = adversary.heard_of(2, 2, 3);
    EXPECT_EQ(std::find(later.begin(), later.end(), 1), later.end());
}

TEST(FloodMin, OneCrashCanSplitASingleRound) {
    // f=1, k=1 needs 2 rounds; with only 1 round a crash splits the
    // system into two estimates.
    algo::FloodMin one_round(1);
    ho::CrashHo adversary;
    adversary.set_crash(1, {1, {2}});  // x1 reaches only p2
    ho::HoRun run = execute_ho(one_round, 3, {1, 2, 3}, adversary, 3);
    EXPECT_EQ(run.decision_of(2), 1);  // saw the minimum
    EXPECT_EQ(run.decision_of(3), 2);  // did not
    EXPECT_EQ(run.distinct_decisions().size(), 2u);
}

TEST(FloodMin, TwoRoundsToleratesOneCrashForConsensus) {
    // The f/k + 1 = 2 rounds close the gap the previous test opened.
    algo::FloodMin two_rounds(2);
    ho::CrashHo adversary;
    adversary.set_crash(1, {1, {2}});
    ho::HoRun run = execute_ho(two_rounds, 3, {1, 2, 3}, adversary, 4);
    EXPECT_EQ(run.distinct_decisions().size(), 1u);
}

TEST(FloodMin, RoundsForBound) {
    EXPECT_EQ(algo::FloodMin::rounds_for(0, 1), 1);
    EXPECT_EQ(algo::FloodMin::rounds_for(3, 1), 4);
    EXPECT_EQ(algo::FloodMin::rounds_for(3, 2), 2);
    EXPECT_EQ(algo::FloodMin::rounds_for(4, 2), 3);
}

// ------------------------------------------------- crash-schedule sweep

struct CrashSweep {
    int n, f, k;
    std::uint64_t seed;
};

class FloodMinCrashProperty : public ::testing::TestWithParam<CrashSweep> {};

TEST_P(FloodMinCrashProperty, AtMostKValuesWithinTheRoundBudget) {
    const auto [n, f, k, seed] = GetParam();
    // Worst-case staggering: one crash per round (the classic adversary
    // that delays cleaning as long as possible).
    std::vector<int> rounds;
    for (int i = 0; i < f; ++i) rounds.push_back(i / k + 1);
    const int distinct = core::ho_floodmin_crash_trial(n, f, k, rounds, seed);
    EXPECT_LE(distinct, k) << "n=" << n << " f=" << f << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FloodMinCrashProperty,
    ::testing::Values(CrashSweep{4, 1, 1, 1}, CrashSweep{5, 2, 1, 2},
                      CrashSweep{5, 2, 2, 3}, CrashSweep{6, 3, 1, 4},
                      CrashSweep{6, 3, 2, 5}, CrashSweep{6, 3, 3, 6},
                      CrashSweep{8, 4, 2, 7}, CrashSweep{8, 5, 3, 8},
                      CrashSweep{10, 6, 2, 9}, CrashSweep{10, 6, 3, 10},
                      CrashSweep{12, 7, 4, 11}, CrashSweep{9, 8, 4, 12}));

// ------------------------------------------- the HO partition argument

TEST(HoPartition, IsolatedBlocksSplitFloodMin) {
    // k=2: three isolated pairs keep three minima for ever -- the
    // Theorem 1 partition argument in the round model.
    algo::FloodMin algorithm(2);
    core::HoPartitionResult result = core::ho_partition_argument(
        algorithm, 6, 2, {{1, 2}, {3, 4}, {5, 6}}, /*isolation_rounds=*/0);
    EXPECT_TRUE(result.violation) << result.summary();
    EXPECT_EQ(result.distinct_decisions, 3);
    EXPECT_TRUE(result.all_indistinguishable);
}

TEST(HoPartition, EarlySynchronousWindowRescues) {
    // If the partition heals before the decision round (window at round
    // 1 of a 3-round protocol), FloodMin converges: no violation.
    algo::FloodMin algorithm(3);
    core::HoPartitionResult result = core::ho_partition_argument(
        algorithm, 6, 2, {{1, 2}, {3, 4}, {5, 6}}, /*isolation_rounds=*/1);
    EXPECT_FALSE(result.violation) << result.summary();
    EXPECT_EQ(result.distinct_decisions, 1);
}

TEST(HoPartition, LateWindowIsTooLate) {
    // Window opens only after the decision round: the blocks already
    // decided their own minima (Alistarh et al.'s synchronous-window
    // lower bound, qualitatively).
    algo::FloodMin algorithm(2);
    core::HoPartitionResult result = core::ho_partition_argument(
        algorithm, 6, 2, {{1, 2}, {3, 4}, {5, 6}}, /*isolation_rounds=*/2);
    EXPECT_TRUE(result.violation) << result.summary();
}

}  // namespace
}  // namespace ksa
