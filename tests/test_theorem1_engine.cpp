// White-box tests of the Theorem 1 engine: each certificate component in
// isolation, positive and negative cases, and the border_map synthesis.

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "algo/one_third_rule.hpp"
#include "core/border_map.hpp"
#include "core/bounds.hpp"
#include "core/theorem1.hpp"
#include "core/theorem2.hpp"
#include "sim/system.hpp"

namespace ksa::core {
namespace {

Theorem1Inputs basic_inputs(const Algorithm& algorithm, int n, int k,
                            std::vector<std::vector<ProcessId>> blocks) {
    Theorem1Inputs in;
    in.algorithm = &algorithm;
    in.spec = make_partition_spec(n, k, std::move(blocks));
    in.inputs = distinct_inputs(n);
    in.plan = FailurePlan{};
    return in;
}

TEST(Theorem1Engine, AlphaAndBetaAreConstructedAndIndistinguishable) {
    algo::FloodingKSet algorithm(2);  // n=5, f=3 candidate
    Theorem1Inputs in = basic_inputs(algorithm, 5, 2, {{1, 2}});
    Theorem1Certificate cert = certify_theorem1(in);
    EXPECT_TRUE(cert.condition_a);
    EXPECT_TRUE(cert.condition_b);
    EXPECT_TRUE(cert.condition_d);
    // Without split stages the violation components stay unset.
    EXPECT_FALSE(cert.consensus_split);
    EXPECT_FALSE(cert.violation);
    EXPECT_FALSE(cert.complete());
    // alpha is a run in R(D): D = {3,4,5} silent from D-bar.
    EXPECT_TRUE(dec_d_holds(cert.alpha, cert.spec));
    // beta realizes (dec-Dbar): block {1,2} decided its own value 1.
    EXPECT_EQ(cert.block_values, (std::set<Value>{1}));
    // The indistinguishability is on the digests themselves.
    EXPECT_TRUE(indistinguishable_for_all(cert.alpha, cert.beta, cert.spec.d));
}

TEST(Theorem1Engine, ConditionAFailsWhenDCannotDecideAlone) {
    // A candidate that waits for everybody: D cannot decide in isolation,
    // so R(D) has no *decisive* witness -- condition (A) fails, exactly
    // as it should for an algorithm the theorem does not defeat this way.
    algo::FloodingKSet everybody(5);
    Theorem1Inputs in = basic_inputs(everybody, 5, 2, {{1, 2}});
    in.stage_budget = 300;
    in.max_steps = 4000;
    Theorem1Certificate cert = certify_theorem1(in);
    EXPECT_FALSE(cert.condition_a);
}

TEST(Theorem1Engine, BlockValuesMustBeDistinct) {
    // With identical proposals everywhere, (dec-Dbar) cannot be realized
    // for k >= 3 (two blocks cannot decide two distinct values).
    algo::FloodingKSet algorithm(2);
    Theorem1Inputs in = basic_inputs(algorithm, 7, 3, {{1, 2}, {3, 4}});
    in.inputs = uniform_inputs(7, 42);
    Theorem1Certificate cert = certify_theorem1(in);
    EXPECT_TRUE(cert.condition_a);   // silence is still constructible
    EXPECT_FALSE(cert.condition_b);  // but (dec-Dbar) is not
}

TEST(Theorem1Engine, SplitStagesDriveTheViolation) {
    algo::FloodingKSet algorithm(2);  // n=5, f=3, k=2
    Theorem1Inputs in = basic_inputs(algorithm, 5, 2, {{1, 2}});
    in.split_stages = window_split_stages(in.spec.d, 2);
    Theorem1Certificate cert = certify_theorem1(in);
    EXPECT_TRUE(cert.complete()) << cert.summary();
    // The split run decides two values inside D = {3,4,5}.
    EXPECT_GE(cert.d_values.size(), 2u);
    // The violating run contains all of them plus the block value.
    for (Value v : cert.d_values)
        EXPECT_TRUE(cert.violating_values.count(v) != 0);
    EXPECT_TRUE(cert.violating_values.count(1) != 0);
}

TEST(Theorem1Engine, RestrictedRunNeverTalksOutsideD) {
    algo::FloodingKSet algorithm(2);
    Theorem1Inputs in = basic_inputs(algorithm, 5, 2, {{1, 2}});
    Theorem1Certificate cert = certify_theorem1(in);
    for (const StepRecord& s : cert.restricted.steps)
        for (const Message& m : s.sent) {
            EXPECT_GE(m.to, 3);
            EXPECT_LE(m.to, 5);
        }
    // The full run (blocks dead) sends to them -- the messages just rot.
    bool sent_outside = false;
    for (const StepRecord& s : cert.full_dead.steps)
        for (const Message& m : s.sent)
            if (m.to <= 2) sent_outside = true;
    EXPECT_TRUE(sent_outside);
    EXPECT_TRUE(cert.condition_d);
}

TEST(Theorem1Engine, SummaryMentionsEveryComponent) {
    algo::FloodingKSet algorithm(2);
    Theorem1Inputs in = basic_inputs(algorithm, 5, 2, {{1, 2}});
    in.split_stages = window_split_stages(in.spec.d, 2);
    Theorem1Certificate cert = certify_theorem1(in);
    std::string s = cert.summary();
    EXPECT_NE(s.find("(A)="), std::string::npos);
    EXPECT_NE(s.find("(B)="), std::string::npos);
    EXPECT_NE(s.find("violation="), std::string::npos);
}

// -------------------------------------------------------------- border map

TEST(BorderMap, InitialCrashColumnMatchesTheorem8) {
    for (int n : {4, 6, 9}) {
        auto rows = border_map(n);
        for (const auto& row : rows)
            for (int k = 1; k < n; ++k) {
                const char c = row.initial[k - 1];
                EXPECT_EQ(c == 'S', theorem8_solvable(n, row.f, k))
                    << "n=" << n << " f=" << row.f << " k=" << k;
            }
    }
}

TEST(BorderMap, AsyncColumnIsMonotoneAndLayered) {
    // Along increasing k the async verdict moves X -> x -> S and never
    // back.
    for (int n : {5, 8, 12}) {
        for (const auto& row : border_map(n)) {
            int phase = 0;  // 0 = X, 1 = x, 2 = S
            for (char c : row.async_) {
                int now = c == 'X' ? 0 : (c == 'x' ? 1 : 2);
                EXPECT_GE(now, phase) << "n=" << n << " f=" << row.f;
                phase = now;
            }
        }
    }
}

TEST(BorderMap, DetectorLineIsCorollary13) {
    EXPECT_EQ(detector_line(4), "SXS");
    EXPECT_EQ(detector_line(6), "SXXXS");
    EXPECT_EQ(detector_line(8), "SXXXXXS");
}

TEST(BorderMap, VerdictChars) {
    EXPECT_EQ(verdict_char(Verdict::kSolvable), 'S');
    EXPECT_EQ(verdict_char(Verdict::kImpossibleEasy), 'X');
    EXPECT_EQ(verdict_char(Verdict::kImpossibleTopology), 'x');
}

}  // namespace
}  // namespace ksa::core
