// Tests for the ksa-verify determinism layer.
//
// The heart of this file is the zoo audit: every scheduler in the zoo ×
// every algorithm in src/algo/ is (a) executed twice with fresh
// scheduler/oracle instances and (b) replayed step-wise from its
// recorded choice sequence -- both must be byte-identical at the level
// of the serialized KSARUN-1 trace.  This mechanically enforces the
// determinism promise of sim/system.hpp that every pasting and
// partition construction relies on.
//
// The file also verifies the auditor *catches* planted nondeterminism:
// a scheduler leaking hidden global state and a behavior folding global
// state into its digest.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "algo/kset_paxos.hpp"
#include "algo/paxos_consensus.hpp"
#include "algo/quorum_leader_kset.hpp"
#include "algo/ranked_set_agreement.hpp"
#include "check/determinism.hpp"
#include "fd/sources.hpp"
#include "sim/schedulers.hpp"
#include "sim/serialize.hpp"
#include "sim/system.hpp"

namespace ksa {
namespace {

constexpr int kN = 4;
constexpr ExecutionLimits kLimits{.max_steps = 6000};

// --------------------------------------------------------------- the zoo

struct ZooAlgorithm {
    std::string label;
    std::shared_ptr<const Algorithm> algorithm;
    check::OracleFactory oracle;  ///< empty for FD-free algorithms
};

check::OracleFactory benign_factory(std::vector<ProcessId> leaders) {
    return [leaders] {
        return fd::make_benign_sigma_omega(kN, FailurePlan{}, leaders);
    };
}

/// Every Algorithm in src/algo/ that runs on the asynchronous System
/// engine (the ho:: round-model algorithms FloodMin and OneThirdRule
/// execute through sim/rounds.hpp instead and have no scheduler).
std::vector<ZooAlgorithm> algorithm_zoo() {
    std::vector<ZooAlgorithm> zoo;
    zoo.push_back({"flooding",
                   std::make_shared<algo::FloodingKSet>(kN - 1), {}});
    zoo.push_back({"trivial-wait-free",
                   std::make_shared<algo::TrivialWaitFree>(), {}});
    zoo.push_back({"initial-clique",
                   std::make_shared<algo::InitialCliqueKSet>(kN), {}});
    zoo.push_back({"kset-paxos", std::make_shared<algo::KSetPaxos>(2),
                   [] {
                       return std::make_unique<fd::ComposedOracle>(
                           std::make_unique<fd::CorrectSetQuorum>(
                               kN, FailurePlan{}),
                           std::make_unique<fd::StableLeaders>(
                               std::vector<ProcessId>{2, 4}, 0));
                   }});
    zoo.push_back({"paxos-consensus",
                   std::make_shared<algo::PaxosConsensus>(),
                   benign_factory({1})});
    zoo.push_back({"quorum-leader-kset",
                   std::make_shared<algo::QuorumLeaderKSet>(),
                   benign_factory({1})});
    zoo.push_back({"ranked-set",
                   std::make_shared<algo::RankedSetAgreement>(), [] {
                       return std::make_unique<fd::ComposedOracle>(
                           std::make_unique<fd::CorrectSetQuorum>(
                               kN, FailurePlan{}),
                           nullptr);
                   }});
    return zoo;
}

/// A partition prefix wrapped in fair completion, so the zoo also covers
/// the composed-scheduler path.
class PartitionThenFair final : public Scheduler {
public:
    PartitionThenFair() : completion_(partition_) {}
    std::optional<StepChoice> next(const SystemView& view) override {
        return completion_.next(view);
    }
    std::string name() const override { return completion_.name(); }

private:
    PartitionScheduler partition_{{{1, 2}, {3, 4}}, 400};
    FairCompletionScheduler completion_;
};

struct ZooScheduler {
    std::string label;
    check::SchedulerFactory make;
};

/// Every Scheduler in sim/schedulers.hpp except ScriptedScheduler (the
/// replay audit itself exercises the scripted path on every pair).
std::vector<ZooScheduler> scheduler_zoo() {
    std::vector<ZooScheduler> zoo;
    zoo.push_back({"round-robin",
                   [] { return std::make_unique<RoundRobinScheduler>(); }});
    zoo.push_back(
        {"random", [] { return std::make_unique<RandomScheduler>(42); }});
    zoo.push_back(
        {"lockstep", [] { return std::make_unique<LockstepScheduler>(); }});
    zoo.push_back({"partition", [] {
                       return std::make_unique<PartitionScheduler>(
                           std::vector<std::vector<ProcessId>>{{1, 2},
                                                               {3, 4}},
                           400);
                   }});
    zoo.push_back({"staged", [] {
                       StagedScheduler::Stage stage;
                       stage.active = {1, 2, 3};
                       stage.budget = 400;
                       return std::make_unique<StagedScheduler>(
                           std::vector<StagedScheduler::Stage>{stage});
                   }});
    zoo.push_back({"partition+fair-completion",
                   [] { return std::make_unique<PartitionThenFair>(); }});
    return zoo;
}

TEST(DeterminismZoo, EverySchedulerTimesEveryAlgorithmReplaysBitIdentically) {
    const std::vector<Value> inputs = distinct_inputs(kN);
    for (const ZooAlgorithm& a : algorithm_zoo()) {
        check::DeterminismAuditor auditor(*a.algorithm, a.oracle, kLimits);
        for (const ZooScheduler& s : scheduler_zoo()) {
            SCOPED_TRACE(a.label + " x " + s.label);

            // (a) Double execution with fresh scheduler+oracle instances.
            const check::ReplayReport twice =
                auditor.audit_scheduler(kN, inputs, {}, s.make);
            EXPECT_TRUE(twice.deterministic) << twice.to_string();

            // (b) Step-wise replay of the recorded choice sequence.
            std::unique_ptr<FdOracle> oracle;
            if (a.oracle) oracle = a.oracle();
            std::unique_ptr<Scheduler> scheduler = s.make();
            System system(*a.algorithm, kN, inputs, {}, oracle.get());
            const ksa::Run run = system.execute(*scheduler, kLimits);
            const check::ReplayReport replay = auditor.audit_replay(run);
            EXPECT_TRUE(replay.deterministic) << replay.to_string();
        }
    }
}

TEST(DeterminismZoo, CrashPlansReplayBitIdenticallyToo) {
    // The crash machinery (final-step omissions, initially dead
    // processes) must replay exactly as well; FD-free algorithms only,
    // with a benign-oracle spot check for paxos.
    FailurePlan plan;
    plan.set_initially_dead(3);
    plan.set_crash(4, CrashSpec{2, {2}});
    const std::vector<Value> inputs = distinct_inputs(kN);

    algo::FloodingKSet flooding(2);
    check::DeterminismAuditor flood_audit(flooding, {}, kLimits);
    for (const ZooScheduler& s : scheduler_zoo()) {
        SCOPED_TRACE("flooding(crashy) x " + s.label);
        const check::ReplayReport twice =
            flood_audit.audit_scheduler(kN, inputs, plan, s.make);
        EXPECT_TRUE(twice.deterministic) << twice.to_string();
    }

    algo::PaxosConsensus paxos;
    FailurePlan paxos_plan;
    paxos_plan.set_crash(4, CrashSpec{1, {}});
    check::OracleFactory oracle = [paxos_plan] {
        return fd::make_benign_sigma_omega(kN, paxos_plan, {1});
    };
    RoundRobinScheduler rr;
    const check::ReplayReport report = check::audit_determinism(
        paxos, kN, inputs, paxos_plan, rr, oracle, kLimits);
    EXPECT_TRUE(report.deterministic) << report.to_string();
}

// ---------------------------------------------- planted nondeterminism

/// A scheduler leaking hidden global state across instances -- the moral
/// equivalent of consulting ::rand() or hash-table iteration order.  Two
/// fresh instances produce different schedules, which the double-run
/// audit must catch.
class LeakyGlobalScheduler final : public Scheduler {
public:
    std::optional<StepChoice> next(const SystemView& view) override {
        if (issued_ >= 6) return std::nullopt;
        ++issued_;
        StepChoice choice;
        choice.process = static_cast<ProcessId>(global_++ % view.n()) + 1;
        choice.deliver_all = true;
        return choice;
    }
    std::string name() const override { return "leaky-global"; }

private:
    int issued_ = 0;
    static inline int global_ = 0;  // the planted bug
};

TEST(DeterminismAuditor, CatchesNondeterministicScheduler) {
    algo::TrivialWaitFree algorithm;
    check::DeterminismAuditor auditor(algorithm, {}, kLimits);
    const check::ReplayReport report = auditor.audit_scheduler(
        kN, distinct_inputs(kN), {},
        [] { return std::make_unique<LeakyGlobalScheduler>(); });
    EXPECT_FALSE(report.deterministic);
    EXPECT_NE(report.divergence.find("trace"), std::string::npos)
        << report.to_string();
    EXPECT_NE(report.first_diff_line, check::ReplayReport::kNoLine);
}

/// A behavior folding hidden global state into its digest: execution and
/// replay observe different digests, which the replay audit must catch.
class LeakyDigestBehavior final : public Behavior {
public:
    StepOutput on_step(const StepInput&) override {
        StepOutput out;
        if (!decided_) {
            out.decision = 1;
            decided_ = true;
        }
        return out;
    }
    std::string state_digest() const override {
        return "g" + std::to_string(global_++);  // the planted bug
    }
    std::unique_ptr<Behavior> clone() const override {
        return std::make_unique<LeakyDigestBehavior>(*this);
    }

private:
    bool decided_ = false;
    static inline int global_ = 0;
};

class LeakyDigestAlgorithm final : public Algorithm {
public:
    std::unique_ptr<Behavior> make_behavior(ProcessId, int,
                                            Value) const override {
        return std::make_unique<LeakyDigestBehavior>();
    }
    std::string name() const override { return "leaky-digest"; }
};

TEST(DeterminismAuditor, CatchesNondeterministicBehaviorOnReplay) {
    LeakyDigestAlgorithm algorithm;
    RoundRobinScheduler rr;
    System system(algorithm, 2, {5, 6}, {});
    const ksa::Run run = system.execute(rr, kLimits);

    check::DeterminismAuditor auditor(algorithm, {}, kLimits);
    const check::ReplayReport report = auditor.audit_replay(run);
    EXPECT_FALSE(report.deterministic);
    EXPECT_NE(report.first_diff_line, check::ReplayReport::kNoLine);
}

// ------------------------------------------------------------- plumbing

TEST(DeterminismAuditor, CompareTracesQuotesFirstDivergingLine) {
    const check::ReplayReport equal =
        check::compare_traces("a\nb\nc\n", "a\nb\nc\n");
    EXPECT_TRUE(equal.deterministic);
    EXPECT_EQ(equal.first_diff_line, check::ReplayReport::kNoLine);

    const check::ReplayReport mid =
        check::compare_traces("a\nb\nc\n", "a\nX\nc\n");
    EXPECT_FALSE(mid.deterministic);
    EXPECT_EQ(mid.first_diff_line, 1u);
    EXPECT_NE(mid.divergence.find("`b` vs `X`"), std::string::npos);

    const check::ReplayReport tail =
        check::compare_traces("a\nb\n", "a\nb\nc\n");
    EXPECT_FALSE(tail.deterministic);
    EXPECT_NE(tail.divergence.find("lengths differ"), std::string::npos);
}

TEST(DeterminismAuditor, RequiresOracleFactoryForFdAlgorithms) {
    algo::PaxosConsensus paxos;
    EXPECT_THROW({ check::DeterminismAuditor auditor(paxos); }, UsageError);
}

}  // namespace
}  // namespace ksa
