// Deep scheduler tests: budgets, stall accounting, completion
// predicates, aging, release semantics, lockstep cycles -- plus the
// strong T-independence checker (Definition 6's "eventually" clause).

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "core/independence.hpp"
#include "sim/admissibility.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace ksa {
namespace {

TEST(PartitionScheduler, RejectsOverlappingBlocks) {
    // The documented precondition "blocks must be disjoint" is enforced
    // by KSA_REQUIRE in the constructor (ksa-verify): an overlapping
    // partitioning would make the Theorem 2/10 constructions unsound.
    EXPECT_THROW(PartitionScheduler({{1, 2}, {2, 3}}), UsageError);
    EXPECT_THROW(PartitionScheduler({{4}, {1, 2, 3, 4}}), UsageError);
    EXPECT_THROW(
        PartitionScheduler(std::vector<std::vector<ProcessId>>{{1}, {}}),
        UsageError);  // empty block
    EXPECT_THROW(PartitionScheduler({{0, 1}}), UsageError);   // bad pid
    EXPECT_NO_THROW(PartitionScheduler({{1, 2}, {3, 4}}));
}

TEST(StagedScheduler, BudgetsAndStallAccounting) {
    // Stage 0 can never complete (active singleton with threshold 3);
    // stage 1 completes.  Stall list must contain exactly stage 0.
    algo::FloodingKSet algorithm(3);
    StagedScheduler::Stage starving{{1}, {}, {}, 20};
    StagedScheduler::Stage fine{{1, 2, 3, 4}, {}, {}, 2000};
    StagedScheduler sched({starving, fine});
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), {}, sched);
    EXPECT_EQ(sched.stalled_stages(), std::vector<int>{0});
    EXPECT_TRUE(run.all_correct_decided());
}

TEST(StagedScheduler, CustomDonePredicateEndsStageEarly) {
    algo::FloodingKSet algorithm(4);  // nobody can decide in stage 0
    StagedScheduler::Stage brief;
    brief.active = {1, 2, 3, 4};
    brief.done = [](const SystemView& v) { return v.now() > 5; };
    StagedScheduler sched({brief});
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), {}, sched);
    EXPECT_TRUE(sched.stalled_stages().empty());
    // After the early stage end, release completes the run.
    EXPECT_TRUE(run.all_correct_decided());
    EXPECT_LE(sched.release_time(), 7);
}

TEST(StagedScheduler, ReleaseTimeSeparatesPhases) {
    algo::FloodingKSet algorithm(2);
    StagedScheduler::Stage stage{{1, 2}, {}, {}, 2000};
    StagedScheduler sched({stage});
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), {}, sched);
    const Time release = sched.release_time();
    ASSERT_NE(release, kNever);
    // Before the release, only {1,2} stepped.
    for (const StepRecord& s : run.steps)
        if (s.time < release) {
            EXPECT_LE(s.process, 2);
        }
    // And p3/p4 decided only after it.
    EXPECT_GE(run.decision_time_of(3), release);
}

TEST(RandomScheduler, AgingForcesDelivery) {
    // With max_age = 4, no delivered message may be older than the bound
    // plus the slack of the destination's scheduling gap... the checkable
    // invariant: when a process steps, every message older than max_age
    // in its buffer is part of the delivery.
    algo::FloodingKSet algorithm(5);
    RandomScheduler sched(77, /*max_age=*/4);
    ksa::Run run = execute_run(algorithm, 5, distinct_inputs(5), {}, sched);
    for (const StepRecord& s : run.steps) {
        // Reconstruct: any message delivered in a LATER step of the same
        // process that was already old at this step would violate aging.
        for (const StepRecord& later : run.steps) {
            if (later.process != s.process || later.time <= s.time) continue;
            for (const Message& m : later.delivered) {
                // If m existed (sent) before this step and was already
                // over-age at this step, it should have been delivered
                // at this step, not later.
                if (m.sent_at < s.time && s.time - m.sent_at >= 4 &&
                    !run.plan.is_faulty(s.process)) {
                    // Tolerated only if this step pre-dates the send's
                    // arrival... sent_at < s.time means it was in the
                    // buffer.  This situation must not occur:
                    ADD_FAILURE()
                        << "aged message " << m.id << " skipped at t="
                        << s.time << " delivered at t=" << later.time;
                }
            }
        }
    }
    EXPECT_TRUE(run.all_correct_decided());
}

TEST(FairCompletion, WrapsAdversarialPrefixIntoAdmissibleRun) {
    algo::FloodingKSet algorithm(2);
    // A scripted prefix that stops mid-way...
    std::vector<StepChoice> script;
    StepChoice c1;
    c1.process = 1;
    script.push_back(c1);
    ScriptedScheduler inner(script);
    FairCompletionScheduler wrapped(inner);
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, wrapped);
    AdmissibilityReport adm = check_admissibility(run);
    EXPECT_TRUE(adm.admissible && adm.conclusive);
    EXPECT_TRUE(run.all_correct_decided());
    EXPECT_NE(wrapped.name().find("fair-completion"), std::string::npos);
}

TEST(Lockstep, CyclesAreCounted) {
    algo::FloodingKSet algorithm(3);
    LockstepScheduler sched;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, sched);
    EXPECT_GE(sched.cycles(), 1);
    EXPECT_TRUE(run.all_correct_decided());
}

// --------------------------------------------------- strong independence

TEST(StrongIndependence, HoldsForFResilientFlooding) {
    // Flooding threshold 2 at n=4: {1,2} can finish alone even after an
    // open prefix in which it heard from outside.
    algo::FloodingKSet algorithm(2);
    core::IndependenceWitness w = core::check_set_strong_independence(
        algorithm, 4, distinct_inputs(4), {}, {1, 2}, {}, 6, 500);
    EXPECT_TRUE(w.holds);
    EXPECT_TRUE(w.run.all_correct_decided());
}

TEST(StrongIndependence, FailsForStarvingSet) {
    // A singleton cannot finish threshold-3 flooding in isolation even
    // after an open prefix (unless it already decided there -- prevent
    // that with a very short prefix).
    algo::FloodingKSet algorithm(3);
    core::IndependenceWitness w = core::check_set_strong_independence(
        algorithm, 4, distinct_inputs(4), {}, {4}, {}, 1, 100);
    EXPECT_FALSE(w.holds);
}

TEST(StrongIndependence, ObservationOneA) {
    // Strong independence implies plain independence (Observation 1.(a)):
    // for the trivial wait-free protocol both hold for every set.
    algo::TrivialWaitFree algorithm;
    for (const auto& s : core::wait_free_family(3)) {
        core::IndependenceWitness strong = core::check_set_strong_independence(
            algorithm, 3, distinct_inputs(3), {}, s, {}, 4, 100);
        core::IndependenceWitness plain = core::check_set_independence(
            algorithm, 3, distinct_inputs(3), {}, s, {}, 100);
        EXPECT_TRUE(strong.holds);
        EXPECT_TRUE(plain.holds);
    }
}

TEST(StrongIndependence, PrefixReallyIsOpen) {
    // The witness run must contain outside receptions before the
    // isolation -- otherwise "eventually" would be tested vacuously.
    algo::FloodingKSet algorithm(2);
    core::IndependenceWitness w = core::check_set_strong_independence(
        algorithm, 4, distinct_inputs(4), {}, {1, 2}, {}, 8, 500);
    ASSERT_TRUE(w.holds);
    bool outside_heard = false;
    for (ProcessId p : {1, 2})
        if (!w.run.receptions_from(p, {3, 4}).empty()) outside_heard = true;
    EXPECT_TRUE(outside_heard);
}

}  // namespace
}  // namespace ksa
