// Tests for the src/lint/ analyzer library: lexer, suppression
// semantics, line rules, include graph + layering, the planted-violation
// fixtures under tests/lint_fixtures/, SARIF emission/validation, the
// ratchet, and the doc-drift check against doc/analysis.md.
//
// KSA_SOURCE_DIR (compile definition from tests/CMakeLists.txt) points
// at the repo root so fixture and doc paths resolve from any build dir.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/decls.hpp"
#include "lint/flow.hpp"
#include "lint/include_graph.hpp"
#include "lint/json.hpp"
#include "lint/layers.hpp"
#include "lint/lexer.hpp"
#include "lint/ratchet.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"
#include "lint/source_file.hpp"

namespace fs = std::filesystem;
using namespace ksa::lint;

namespace {

const fs::path kRepoRoot = KSA_SOURCE_DIR;
const fs::path kFixtures = kRepoRoot / "tests" / "lint_fixtures";

SourceFile make(const std::string& path, const std::string& text) {
    return SourceFile::from_string(path, text);
}

std::vector<Finding> lines_of(const std::string& path,
                              const std::string& text,
                              bool legacy_only = false) {
    return run_line_rules(make(path, text), legacy_only);
}

AnalysisResult analyze_fixture(const std::string& name) {
    AnalyzerOptions options;
    options.root = kFixtures / name;
    options.roots = {"src"};
    AnalysisResult result = analyze(options);
    EXPECT_TRUE(result.errors.empty())
        << name << ": " << (result.errors.empty() ? "" : result.errors[0]);
    return result;
}

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

}  // namespace

// ---------------------------------------------------------------------
// Lexer.

TEST(Lexer, BlanksLineAndBlockComments) {
    const LexedFile lf = lex(
        "int a = 1;  // std::unordered_map in a comment\n"
        "/* std::unordered_map */ int b = 2;\n");
    EXPECT_EQ(lf.lines[0].code.find("unordered_map"), std::string::npos);
    EXPECT_NE(lf.lines[0].line_comment.find("unordered_map"),
              std::string::npos);
    EXPECT_EQ(lf.lines[1].code.find("unordered_map"), std::string::npos);
    EXPECT_NE(lf.lines[1].code.find("int b = 2;"), std::string::npos);
}

TEST(Lexer, BlanksStringBodiesButKeepsColumns) {
    const LexedFile lf =
        lex("auto s = \"std::unordered_map<int,int>\"; int x = 3;\n");
    const LexedLine& l = lf.lines[0];
    EXPECT_EQ(l.code.find("unordered_map"), std::string::npos);
    EXPECT_NE(l.code.find("int x = 3;"), std::string::npos);
    // Columns line up: code is the same length as raw.
    EXPECT_EQ(l.code.size(), l.raw.size());
    EXPECT_EQ(l.raw.find("int x"), l.code.find("int x"));
}

TEST(Lexer, RawStringsSpanLines) {
    const LexedFile lf = lex(
        "auto re = R\"(std::unordered_map\n"
        "std::random_device\n"
        ")\"; int after = 1;\n");
    EXPECT_EQ(lf.lines[0].code.find("unordered_map"), std::string::npos);
    EXPECT_TRUE(lf.lines[1].continues_multiline);
    EXPECT_EQ(lf.lines[1].code.find("random_device"), std::string::npos);
    EXPECT_NE(lf.lines[2].code.find("int after = 1;"), std::string::npos);
}

TEST(Lexer, DigitSeparatorIsNotACharLiteral) {
    const LexedFile lf = lex("int big = 1'000'000; int y = 2;\n");
    EXPECT_NE(lf.lines[0].code.find("int y = 2;"), std::string::npos);
}

TEST(Lexer, ContainsTokenMatchesWholeIdentifiersOnly) {
    EXPECT_TRUE(contains_token("void f() override;", "override"));
    EXPECT_FALSE(contains_token("decided_is_final()", "final"));
    EXPECT_TRUE(contains_token("bool x final;", "final"));
}

// ---------------------------------------------------------------------
// Suppressions (the fixed semantics; each case regresses a bug in the
// original ksa_lint).

TEST(Suppression, OneTagMayNameSeveralRules) {
    const SourceFile f = make(
        "src/sim/a.hpp",
        "// ksa-lint: allow(unordered-container, raw-random) -- why\n"
        "std::unordered_map<int, int> m{unsigned(std::random_device{}())};\n");
    EXPECT_TRUE(f.suppressed(2, "unordered-container"));
    EXPECT_TRUE(f.suppressed(2, "raw-random"));
    EXPECT_FALSE(f.suppressed(2, "stream-io-in-library"));
    EXPECT_TRUE(run_line_rules(f, false).empty());
}

TEST(Suppression, StandaloneCommentCoversWholeWrappedStatement) {
    // The declaration wraps: the tag sits 3 lines above the offending
    // token.  The original only looked one line up.
    const SourceFile f = make(
        "src/sim/a.hpp",
        "// ksa-lint: allow(unordered-container) -- lookup only\n"
        "static const std::map<int,\n"
        "                      int,\n"
        "                      std::less<>> lookup =\n"
        "    make_lookup(std::unordered_map<int, int>{});\n");
    EXPECT_TRUE(f.suppressed(5, "unordered-container"));
    EXPECT_TRUE(run_line_rules(f, false).empty());
}

TEST(Suppression, TagInsideBlockCommentIsInert) {
    const SourceFile f = make(
        "src/sim/a.hpp",
        "/* ksa-lint: allow(unordered-container) */\n"
        "std::unordered_map<int, int> m;\n");
    EXPECT_FALSE(f.suppressed(2, "unordered-container"));
    const std::vector<Finding> findings = run_line_rules(f, false);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-container");
    EXPECT_EQ(findings[0].line, 2u);
}

TEST(Suppression, TagInsideStringLiteralIsInert) {
    const SourceFile f = make(
        "src/sim/a.hpp",
        "const char* doc = \"ksa-lint: allow(unordered-container)\";\n"
        "std::unordered_map<int, int> m;\n");
    EXPECT_FALSE(f.suppressed(2, "unordered-container"));
    EXPECT_EQ(run_line_rules(f, false).size(), 1u);
}

TEST(Suppression, TrailingTagCoversLineAndNext) {
    const SourceFile f = make(
        "src/sim/a.hpp",
        "std::unordered_map<int, int> a;  // ksa-lint: allow(unordered-container)\n"
        "std::unordered_map<int, int> b;\n"
        "std::unordered_map<int, int> c;\n");
    EXPECT_TRUE(f.suppressed(1, "unordered-container"));
    EXPECT_TRUE(f.suppressed(2, "unordered-container"));
    EXPECT_FALSE(f.suppressed(3, "unordered-container"));
}

// ---------------------------------------------------------------------
// Line rules through the lexer.

TEST(LineRules, PatternInsideStringLiteralDoesNotFire) {
    EXPECT_TRUE(lines_of("src/sim/a.hpp",
                         "const char* s = \"std::unordered_map\";\n")
                    .empty());
    EXPECT_TRUE(
        lines_of("src/sim/a.hpp",
                 "// std::random_device is banned (see doc/analysis.md)\n")
            .empty());
}

TEST(LineRules, UnorderedContainerScopedToHotPath) {
    const std::string code = "std::unordered_set<int> s;\n";
    EXPECT_EQ(lines_of("src/sim/a.hpp", code).size(), 1u);
    EXPECT_EQ(lines_of("src/chaos/a.hpp", code).size(), 1u);
    EXPECT_TRUE(lines_of("src/graph/a.hpp", code).empty());
}

TEST(LineRules, PointerKeyedContainer) {
    const std::vector<Finding> f = lines_of(
        "src/core/a.hpp",
        "std::map<Proc*, int> bad;\n"
        "std::map<int, Proc*> good;\n"
        "std::set<const Proc *> also_bad;\n");
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0].rule, "pointer-keyed-container");
    EXPECT_EQ(f[0].line, 1u);
    EXPECT_EQ(f[1].line, 3u);
    // Analyzer-only: the legacy set must not grow.
    EXPECT_TRUE(lines_of("src/core/a.hpp", "std::map<Proc*, int> bad;\n",
                         /*legacy_only=*/true)
                    .empty());
}

TEST(LineRules, FrontierGrowthScopedToStore) {
    const std::string code =
        "std::vector<store::DeltaRecord> frontier;\n"
        "std::deque<DeltaRecord> layer_queue;\n"
        "DeltaRecord one;\n"  // a single record by value: fine
        "std::vector<int> counts;\n";
    const std::vector<Finding> f = lines_of("src/core/a.cpp", code);
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0].rule, "frontier-growth-outside-store");
    EXPECT_EQ(f[0].line, 1u);
    EXPECT_EQ(f[1].rule, "frontier-growth-outside-store");
    EXPECT_EQ(f[1].line, 2u);
    // The store layer itself owns the frontier containers.
    EXPECT_TRUE(lines_of("src/store/delta_store.cpp", code).empty());
    // Classic-set rule: plain ksa_lint enforces it too.
    EXPECT_EQ(lines_of("src/core/a.cpp", code, /*legacy_only=*/true).size(),
              2u);
    // The sanctioned bounded-scratch annotation suppresses it.
    EXPECT_TRUE(lines_of("src/core/a.cpp",
                         "// ksa-lint: allow(frontier-growth-outside-store)\n"
                         "std::vector<DeltaRecord> block_scratch;\n")
                    .empty());
}

TEST(LineRules, WallClockScopedToBenchAndExec) {
    const std::string code =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_EQ(lines_of("src/sim/a.cpp", code).size(), 1u);
    EXPECT_EQ(lines_of("tools/a.cpp", code).size(), 1u);
    EXPECT_TRUE(lines_of("bench/a.cpp", code).empty());
    EXPECT_TRUE(lines_of("src/exec/pool.cpp", code).empty());
}

TEST(LineRules, FindingsCarryColumns) {
    const std::vector<Finding> f =
        lines_of("src/sim/a.hpp", "    std::unordered_map<int, int> m;\n");
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0].column, 5u);
    EXPECT_EQ(f[0].severity, Severity::kError);
}

// ---------------------------------------------------------------------
// Include graph + layers.

TEST(Layers, LongestPrefixCarvesPseudoLayers) {
    ASSERT_NE(layer_for("src/sim/types.hpp"), nullptr);
    EXPECT_EQ(layer_for("src/sim/types.hpp")->name, "types");
    EXPECT_EQ(layer_for("src/sim/system.hpp")->name, "sim");
    EXPECT_EQ(layer_for("src/core/reduction.hpp")->name, "reduction");
    EXPECT_EQ(layer_for("src/core/reduction_options.hpp")->name,
              "reduction_options");
    EXPECT_EQ(layer_for("README.md"), nullptr);
}

TEST(Layers, TableIsADag) {
    // Kahn's algorithm over the KSA_ALLOW edges: the table itself must
    // be acyclic, else "layering" would be unsatisfiable.
    const std::vector<Layer>& table = layers();
    std::map<std::string, std::set<std::string>> deps;
    for (const Layer& l : table)
        for (const std::string& to : l.allowed)
            if (to != l.name) deps[l.name].insert(to);
    std::set<std::string> done;
    bool progress = true;
    while (progress) {
        progress = false;
        for (const Layer& l : table) {
            if (done.count(l.name) != 0) continue;
            bool ready = true;
            for (const std::string& d : deps[l.name])
                if (done.count(d) == 0) ready = false;
            if (ready) {
                done.insert(l.name);
                progress = true;
            }
        }
    }
    EXPECT_EQ(done.size(), table.size()) << "layers.def contains a cycle";
}

TEST(IncludeGraph, ResolvesLikeTheBuild) {
    std::vector<SourceFile> files;
    files.push_back(make("src/sim/a.hpp", "#include \"sim/b.hpp\"\n"));
    files.push_back(make("src/sim/b.hpp", "#pragma once\n"));
    files.push_back(make("tests/t.cpp",
                         "#include \"sim/a.hpp\"\n#include <vector>\n"));
    const IncludeGraph g = IncludeGraph::build(files);
    ASSERT_EQ(g.edges().size(), 2u);  // angled <vector> carries no edge
    EXPECT_TRUE(g.reaches_suffix(2, "sim/b.hpp"));
    EXPECT_FALSE(g.reaches_suffix(1, "sim/a.hpp"));
}

TEST(IncludeGraph, NormalizePath) {
    EXPECT_EQ(normalize_path("src\\sim\\a.hpp"), "src/sim/a.hpp");
    EXPECT_EQ(normalize_path("src/./core/../sim/a.hpp"), "src/sim/a.hpp");
}

// ---------------------------------------------------------------------
// DeclModel: the token-level function/lambda scanner under the flow
// passes.

namespace {

/// The recorded function whose name token sits on `line`, or nullptr.
const FunctionDecl* fn_at(const DeclModel& m, std::size_t line) {
    for (const FunctionDecl& f : m.functions())
        if (f.line == line) return &f;
    return nullptr;
}

}  // namespace

TEST(DeclModel, NestedLambdasGetExtentsAndParents) {
    const SourceFile f = make("src/core/n.cpp",
                              "void outer() {\n"
                              "    auto a = [&](int x) {\n"
                              "        auto b = [=](int y) { return y + 1; };\n"
                              "        return b(x);\n"
                              "    };\n"
                              "}\n");
    const DeclModel m = DeclModel::build({f});
    const FunctionDecl* outer = fn_at(m, 1);
    const FunctionDecl* a = fn_at(m, 2);
    const FunctionDecl* b = fn_at(m, 3);
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(outer->is_lambda);
    EXPECT_EQ(outer->name, "outer");
    EXPECT_TRUE(a->is_lambda);
    EXPECT_EQ(a->default_capture, '&');
    ASSERT_EQ(a->params.size(), 1u);
    EXPECT_EQ(a->params[0], "x");
    EXPECT_TRUE(b->is_lambda);
    EXPECT_EQ(b->default_capture, '=');
    ASSERT_EQ(b->params.size(), 1u);
    EXPECT_EQ(b->params[0], "y");
    // Nesting: outer <- a <- b.
    EXPECT_EQ(&m.functions()[a->parent], outer);
    EXPECT_EQ(&m.functions()[b->parent], a);
    // a's OWN body lines exclude b's extent (line 3).
    const std::size_t a_idx =
        static_cast<std::size_t>(a - m.functions().data());
    const std::vector<std::size_t> own = m.own_body_lines(a_idx);
    EXPECT_EQ(std::count(own.begin(), own.end(), 3u), 0);
    EXPECT_EQ(std::count(own.begin(), own.end(), 4u), 1);
}

TEST(DeclModel, ExplicitAndInitCaptures) {
    const SourceFile f = make(
        "src/core/c.cpp",
        "void g() {\n"
        "    int total = 0;\n"
        "    auto h = [total, &ref, owned = total](std::size_t i) {\n"
        "        return total + i;\n"
        "    };\n"
        "}\n");
    const DeclModel m = DeclModel::build({f});
    const FunctionDecl* h = fn_at(m, 3);
    ASSERT_NE(h, nullptr);
    ASSERT_TRUE(h->is_lambda);
    EXPECT_EQ(h->default_capture, 0);
    ASSERT_EQ(h->captures.size(), 3u);
    EXPECT_EQ(h->captures[0].name, "total");
    EXPECT_FALSE(h->captures[0].by_ref);
    EXPECT_FALSE(h->captures[0].init);
    EXPECT_EQ(h->captures[1].name, "ref");
    EXPECT_TRUE(h->captures[1].by_ref);
    EXPECT_EQ(h->captures[2].name, "owned");
    EXPECT_TRUE(h->captures[2].init);  // [owned = total] owns a copy
}

TEST(DeclModel, TemplatedFunctionsAndDeclarations) {
    const SourceFile f = make("src/core/t.hpp",
                              "template <typename T>\n"
                              "T twice(T value) {\n"
                              "    return value + value;\n"
                              "}\n"
                              "\n"
                              "int declared_only(int count);\n");
    const DeclModel m = DeclModel::build({f});
    const FunctionDecl* twice = fn_at(m, 2);
    ASSERT_NE(twice, nullptr);
    EXPECT_FALSE(twice->is_lambda);
    EXPECT_EQ(twice->name, "twice");
    ASSERT_EQ(twice->params.size(), 1u);
    EXPECT_EQ(twice->params[0], "value");
    EXPECT_EQ(twice->body_begin, 2u);
    EXPECT_EQ(twice->body_end, 4u);
    const FunctionDecl* decl = fn_at(m, 6);
    ASSERT_NE(decl, nullptr);
    EXPECT_EQ(decl->name, "declared_only");
    EXPECT_EQ(decl->body_begin, 0u);  // declaration: no body extent
}

TEST(DeclModel, AnnotationsAttachTrailingAndAbove) {
    const SourceFile f = make(
        "src/exec/a.cpp",
        "// ksa: wait_free -- hot path\n"
        "int fast_path(int v) { return v; }\n"
        "\n"
        "std::mutex mu;\n"
        "int hits = 0;  // ksa: guarded_by(mu)\n"
        "\n"
        "void locked_path();  // ksa: thread_safe\n");
    const DeclModel m = DeclModel::build({f});
    const FunctionDecl* fast = fn_at(m, 2);
    ASSERT_NE(fast, nullptr);
    EXPECT_TRUE(fast->has_annotation(AnnotationKind::kWaitFree));
    const FunctionDecl* locked = fn_at(m, 7);
    ASSERT_NE(locked, nullptr);
    EXPECT_TRUE(locked->has_annotation(AnnotationKind::kThreadSafe));
    ASSERT_EQ(m.guarded_members().size(), 1u);
    EXPECT_EQ(m.guarded_members()[0].member, "hits");
    EXPECT_EQ(m.guarded_members()[0].mutex, "mu");
    EXPECT_EQ(m.guarded_members()[0].line, 5u);
}

TEST(DeclModel, CallGraphReachesTokensByName) {
    std::vector<SourceFile> files;
    files.push_back(make("src/core/a.cpp",
                         "int leaf() { return fold_bytes(1); }\n"
                         "int mid() { return leaf(); }\n"
                         "int top() { return mid(); }\n"
                         "int lonely() { return 7; }\n"));
    const DeclModel m = DeclModel::build(files);
    const std::vector<std::string> sinks = {"fold_bytes"};
    ASSERT_EQ(m.functions_named("top").size(), 1u);
    EXPECT_TRUE(m.reaches_token(files, m.functions_named("top")[0], sinks));
    ASSERT_EQ(m.functions_named("lonely").size(), 1u);
    EXPECT_FALSE(
        m.reaches_token(files, m.functions_named("lonely")[0], sinks));
}

// ---------------------------------------------------------------------
// Flow passes on scratch sources (SourceFile::from_string): the raced
// twin of a real explorer.cpp call site must be caught; the disciplined
// idioms must stay silent.

TEST(Flow, RacedScratchCopyOfExplorerCallSiteIsCaught) {
    // Shape copied from src/core/explorer.cpp's layer expansion, with
    // one planted line: a by-ref captured counter bumped in the lambda.
    std::vector<SourceFile> files;
    files.push_back(make(
        "src/core/explorer_scratch.cpp",
        "void step() {\n"
        "    std::vector<Expansion> expansions ="
        " exec::parallel_map_deterministic(\n"
        "            pool, layer.size(),\n"
        "            [&](std::size_t i) {\n"
        "                ++result.schedules_expanded;\n"
        "                return expand_node(layer[i], cfg, make_key);\n"
        "            },\n"
        "            cfg.min_parallel_frontier);\n"
        "}\n"));
    const DeclModel decls = DeclModel::build(files);
    const std::vector<Finding> findings = run_flow_passes(files, decls);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "parallel-capture-mutation");
    EXPECT_EQ(findings[0].line, 5u);
    EXPECT_EQ(findings[0].column, 19u);  // the `result` token
}

TEST(Flow, PerIndexSlotAndAtomicAndLockStaySilent) {
    std::vector<SourceFile> files;
    files.push_back(make(
        "src/exec/fine.cpp",
        "std::atomic<std::size_t> done{0};\n"
        "void run() {\n"
        "    std::vector<int> out(n);\n"
        "    parallel_map_deterministic(pool, n,\n"
        "        [&out, &fn](std::size_t i) { out[i] = fn(i); });\n"
        "    parallel_map_deterministic(pool, n,\n"
        "        [&](std::size_t i) { done.fetch_add(1); });\n"
        "    parallel_map_deterministic(pool, n, [&](std::size_t i) {\n"
        "        std::lock_guard<std::mutex> lock(mu);\n"
        "        shared += i;\n"
        "    });\n"
        "}\n"));
    const DeclModel decls = DeclModel::build(files);
    EXPECT_TRUE(run_flow_passes(files, decls).empty());
}

// ---------------------------------------------------------------------
// Planted-violation fixtures: each produces EXACTLY its expected
// finding at the expected location.

TEST(Fixtures, Layering) {
    const AnalysisResult r = analyze_fixture("layering");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "layering");
    EXPECT_EQ(r.findings[0].file, "src/sim/bad_include.hpp");
    EXPECT_EQ(r.findings[0].line, 5u);
}

TEST(Fixtures, IncludeCycle) {
    const AnalysisResult r = analyze_fixture("cycle");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "include-cycle");
    EXPECT_EQ(r.findings[0].file, "src/sim/cycle_a.hpp");
    EXPECT_EQ(r.findings[0].line, 6u);
    EXPECT_NE(r.findings[0].message.find("cycle_b.hpp"), std::string::npos);
}

TEST(Fixtures, PointerKeyedContainer) {
    const AnalysisResult r = analyze_fixture("pointer_key");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "pointer-keyed-container");
    EXPECT_EQ(r.findings[0].file, "src/core/ptr_key.hpp");
    EXPECT_EQ(r.findings[0].line, 10u);
}

TEST(Fixtures, FrontierGrowth) {
    const AnalysisResult r = analyze_fixture("frontier_growth");
    ASSERT_EQ(r.findings.size(), 2u);
    for (const Finding& f : r.findings) {
        EXPECT_EQ(f.rule, "frontier-growth-outside-store");
        EXPECT_EQ(f.file, "src/core/frontier_growth.hpp");
    }
    EXPECT_EQ(r.findings[0].line, 11u);
    EXPECT_EQ(r.findings[1].line, 14u);
}

TEST(Fixtures, FloatInDigest) {
    const AnalysisResult r = analyze_fixture("float_digest");
    ASSERT_EQ(r.findings.size(), 2u);  // direct + transitive includer
    for (const Finding& f : r.findings) {
        EXPECT_EQ(f.rule, "float-in-digest");
        EXPECT_EQ(f.line, 10u);
    }
    EXPECT_EQ(r.findings[0].file, "src/core/transitive.hpp");
    EXPECT_EQ(r.findings[1].file, "src/core/uses_digest.hpp");
}

TEST(Fixtures, WallClock) {
    const AnalysisResult r = analyze_fixture("wall_clock");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "wall-clock-outside-bench");
    EXPECT_EQ(r.findings[0].file, "src/sim/timer.hpp");
    EXPECT_EQ(r.findings[0].line, 9u);
}

TEST(Fixtures, FlowParallelCaptureMutation) {
    const AnalysisResult r = analyze_fixture("flow/capture");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "parallel-capture-mutation");
    EXPECT_EQ(r.findings[0].file, "src/core/racy.cpp");
    EXPECT_EQ(r.findings[0].line, 13u);
    EXPECT_EQ(r.findings[0].column, 9u);  // the `total` token
}

TEST(Fixtures, FlowNondetIterationReachesOutput) {
    // Two loops: one reaches the fold vocabulary directly, one through
    // a helper (the call-graph edge).
    const AnalysisResult r = analyze_fixture("flow/nondet_iter");
    ASSERT_EQ(r.findings.size(), 2u);
    for (const Finding& f : r.findings) {
        EXPECT_EQ(f.rule, "nondet-iteration-reaches-output");
        EXPECT_EQ(f.file, "src/graph/emit.cpp");
        EXPECT_EQ(f.column, 5u);  // the `for` keyword
    }
    EXPECT_EQ(r.findings[0].line, 23u);  // direct fold
    EXPECT_EQ(r.findings[1].line, 31u);  // via mix()
}

TEST(Fixtures, FlowLockDisciplineGuardedMember) {
    const AnalysisResult r = analyze_fixture("flow/lock");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "lock-discipline");
    EXPECT_EQ(r.findings[0].file, "src/exec/bad_lock.cpp");
    EXPECT_EQ(r.findings[0].line, 19u);
    EXPECT_EQ(r.findings[0].column, 16u);  // the `hits` read in peek()
    EXPECT_NE(r.findings[0].message.find("peek"), std::string::npos);
}

TEST(Fixtures, FlowLockDisciplineUnannotatedEntryPoint) {
    const AnalysisResult r = analyze_fixture("flow/lock_entry");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "lock-discipline");
    EXPECT_EQ(r.findings[0].file, "src/exec/api.hpp");
    EXPECT_EQ(r.findings[0].line, 11u);
    EXPECT_EQ(r.findings[0].column, 1u);
    EXPECT_NE(r.findings[0].message.find("submit_all"), std::string::npos);
}

TEST(Fixtures, FlowBlockingInTask) {
    const AnalysisResult r = analyze_fixture("flow/blocking");
    ASSERT_EQ(r.findings.size(), 2u);
    for (const Finding& f : r.findings) {
        EXPECT_EQ(f.rule, "blocking-in-task");
        EXPECT_EQ(f.file, "src/exec/task.cpp");
    }
    EXPECT_EQ(r.findings[0].line, 13u);    // std::lock_guard
    EXPECT_EQ(r.findings[0].column, 5u);
    EXPECT_EQ(r.findings[1].line, 14u);    // std::make_unique
    EXPECT_EQ(r.findings[1].column, 18u);
}

TEST(Fixtures, CleanScansSkipTheCorpora) {
    // lint_fixtures/ holds planted violations; the ordinary tree scan
    // must never descend into it (else the clean gates would fail).
    AnalyzerOptions options;
    options.root = kRepoRoot;
    options.roots = {"tests"};
    const AnalysisResult r = analyze(options);
    EXPECT_TRUE(r.errors.empty());
    for (const Finding& f : r.findings)
        EXPECT_EQ(f.file.find("lint_fixtures"), std::string::npos) << f.file;
}

// ---------------------------------------------------------------------
// SARIF.

TEST(Sarif, EmitsValid210Document) {
    std::vector<Finding> findings;
    findings.push_back({"src/sim/a.hpp", 12, 5, "unordered-container",
                        Severity::kError, "message text"});
    const std::string doc = to_sarif(findings, "file:///repo/");
    std::string error;
    const auto parsed = json::parse(doc, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_TRUE(validate_sarif(*parsed).empty());

    const json::Value* runs = parsed->find("runs");
    ASSERT_NE(runs, nullptr);
    const json::Value& run = runs->as_array()[0];
    const json::Value* results = run.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->as_array().size(), 1u);
    const json::Value& res = results->as_array()[0];
    EXPECT_EQ(res.find("ruleId")->as_string(), "unordered-container");
    EXPECT_EQ(res.find("level")->as_string(), "error");
    const json::Value& loc = res.find("locations")->as_array()[0];
    const json::Value* phys = loc.find("physicalLocation");
    ASSERT_NE(phys, nullptr);
    EXPECT_EQ(phys->find("artifactLocation")->find("uri")->as_string(),
              "src/sim/a.hpp");
    EXPECT_EQ(phys->find("region")->find("startLine")->as_number(), 12.0);
    EXPECT_EQ(phys->find("region")->find("startColumn")->as_number(), 5.0);

    // ruleIndex must agree with tool.driver.rules.
    const double idx = res.find("ruleIndex")->as_number();
    const json::Value& rules =
        *run.find("tool")->find("driver")->find("rules");
    EXPECT_EQ(rules.as_array()[static_cast<std::size_t>(idx)]
                  .find("id")
                  ->as_string(),
              "unordered-container");
}

TEST(Sarif, FlowRulesAreDeclaredAndIndexed) {
    // The four flow rules ride the same writer: they must appear under
    // tool.driver.rules, and a flow finding's ruleIndex must resolve.
    std::vector<Finding> findings;
    findings.push_back({"src/exec/task.cpp", 13, 5, "blocking-in-task",
                        Severity::kError, "m"});
    auto doc = json::parse(to_sarif(findings, ""), nullptr);
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(validate_sarif(*doc).empty());
    const json::Value& run = doc->find("runs")->as_array()[0];
    const json::Value& rules =
        *run.find("tool")->find("driver")->find("rules");
    std::set<std::string> ids;
    for (const json::Value& r : rules.as_array())
        ids.insert(r.find("id")->as_string());
    for (const char* name :
         {"parallel-capture-mutation", "nondet-iteration-reaches-output",
          "lock-discipline", "blocking-in-task"})
        EXPECT_TRUE(ids.count(name) != 0) << name;
    const json::Value& res = run.find("results")->as_array()[0];
    const double idx = res.find("ruleIndex")->as_number();
    EXPECT_EQ(rules.as_array()[static_cast<std::size_t>(idx)]
                  .find("id")
                  ->as_string(),
              "blocking-in-task");
}

TEST(Sarif, EmptyFindingsStillValidates) {
    const std::string doc = to_sarif({}, "");
    const auto parsed = json::parse(doc, nullptr);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(validate_sarif(*parsed).empty());
}

TEST(Sarif, ValidatorCatchesBrokenDocuments) {
    const auto broken = json::parse(R"({"version": "1.0.0"})", nullptr);
    ASSERT_TRUE(broken.has_value());
    EXPECT_FALSE(validate_sarif(*broken).empty());

    // A result whose ruleId disagrees with its ruleIndex must fail.
    std::vector<Finding> findings;
    findings.push_back({"a.hpp", 1, 1, "raw-random", Severity::kError, "m"});
    auto doc = json::parse(to_sarif(findings, ""), nullptr);
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(validate_sarif(*doc).empty());
    json::Value& run = doc->as_object()["runs"].as_array()[0];
    json::Value& res = run.as_object()["results"].as_array()[0];
    res.as_object()["ruleId"] = json::Value(std::string("no-such-rule"));
    EXPECT_FALSE(validate_sarif(*doc).empty());
}

// ---------------------------------------------------------------------
// Ratchet.

namespace {

fs::path write_temp(const std::string& name, const std::string& text) {
    const fs::path path = fs::path(::testing::TempDir()) / name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    return path;
}

}  // namespace

TEST(Ratchet, NewFindingInScratchCopyFails) {
    // Scratch copy of a clean fixture tree + one planted violation: the
    // ratchet against the (empty) committed baseline must regress.
    const fs::path scratch =
        fs::path(::testing::TempDir()) / "ksa_ratchet_scratch";
    fs::remove_all(scratch);
    fs::create_directories(scratch / "src" / "sim");
    std::ofstream(scratch / "src" / "sim" / "clean.hpp")
        << "#pragma once\ninline int ok() { return 1; }\n";

    AnalyzerOptions options;
    options.root = scratch;
    options.roots = {"src"};
    options.baseline = kRepoRoot / "lint_baseline.json";
    AnalysisResult before = analyze(options);
    ASSERT_TRUE(before.errors.empty());
    EXPECT_TRUE(before.ratcheted);
    EXPECT_FALSE(before.has_violations());

    std::ofstream(scratch / "src" / "sim" / "planted.hpp")
        << "#pragma once\n#include <map>\nstd::map<int*, int> bad;\n";
    AnalysisResult after = analyze(options);
    ASSERT_TRUE(after.errors.empty());
    EXPECT_TRUE(after.ratcheted);
    EXPECT_TRUE(after.has_violations());
    ASSERT_EQ(after.ratchet_regressions.size(), 1u);
    EXPECT_NE(after.ratchet_regressions[0].find("pointer-keyed-container"),
              std::string::npos);
    fs::remove_all(scratch);
}

TEST(Ratchet, GrandfatheredCountPassesAndStaleFails) {
    std::vector<Finding> findings;
    findings.push_back({"src/a.hpp", 3, 1, "raw-random", Severity::kError,
                        "m"});
    const std::vector<BaselineEntry> exact = {{"raw-random", "src/a.hpp", 1}};
    EXPECT_TRUE(ratchet_compare(findings, exact).ok());

    // One more finding than baselined: regression.
    findings.push_back({"src/a.hpp", 9, 1, "raw-random", Severity::kError,
                        "m"});
    const RatchetResult grown = ratchet_compare(findings, exact);
    EXPECT_EQ(grown.regressions.size(), 1u);
    EXPECT_TRUE(grown.stale.empty());

    // Fewer findings than baselined: stale (burn-down is monotone).
    const RatchetResult shrunk = ratchet_compare({}, exact);
    EXPECT_TRUE(shrunk.regressions.empty());
    EXPECT_EQ(shrunk.stale.size(), 1u);
    EXPECT_NE(shrunk.stale[0].find("--write-baseline"), std::string::npos);
}

TEST(Ratchet, BaselineJsonRoundTrips) {
    std::vector<Finding> findings;
    findings.push_back({"src/a.hpp", 3, 1, "raw-random", Severity::kError,
                        "m"});
    findings.push_back({"src/a.hpp", 9, 1, "raw-random", Severity::kError,
                        "m"});
    findings.push_back({"src/b.hpp", 1, 1, "layering", Severity::kError,
                        "m"});
    const fs::path path =
        write_temp("ksa_baseline_roundtrip.json", baseline_json(findings));
    std::string error;
    const auto loaded = load_baseline(path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(ratchet_compare(findings, *loaded).ok());
    fs::remove(path);
}

TEST(Ratchet, RejectsMalformedBaselines) {
    std::string error;
    EXPECT_FALSE(
        load_baseline(write_temp("ksa_bad1.json", "not json"), &error)
            .has_value());
    EXPECT_FALSE(
        load_baseline(write_temp("ksa_bad2.json", "{\"version\": 1}"),
                      &error)
            .has_value());
    EXPECT_FALSE(load_baseline(
                     write_temp("ksa_bad3.json",
                                "{\"findings\": [{\"rule\": 7}]}"),
                     &error)
                     .has_value());
}

TEST(Ratchet, CommittedBaselineLoadsAndIsEmpty) {
    std::string error;
    const auto baseline =
        load_baseline(kRepoRoot / "lint_baseline.json", &error);
    ASSERT_TRUE(baseline.has_value()) << error;
    EXPECT_TRUE(baseline->empty())
        << "the committed ratchet baseline should stay empty: fix findings "
           "instead of grandfathering them";
}

// ---------------------------------------------------------------------
// Baseline hard-error semantics + the --format=json model.

TEST(Analyzer, MissingBaselineIsAHardError) {
    AnalysisResult r;
    r.findings.push_back({"src/a.hpp", 1, 1, "raw-random", Severity::kError,
                          "m"});
    apply_baseline(r, fs::path(::testing::TempDir()) /
                          "ksa_no_such_baseline.json");
    ASSERT_FALSE(r.errors.empty());
    EXPECT_FALSE(r.ratcheted) << "an unreadable baseline must never "
                                 "degrade into an implicit empty one";
}

TEST(Analyzer, AnalysisJsonCarriesTheFullModel) {
    AnalysisResult r;
    r.files_scanned = 3;
    r.findings.push_back({"src/exec/a.cpp", 13, 9,
                          "parallel-capture-mutation", Severity::kError,
                          "msg"});
    r.ratcheted = true;
    r.ratchet_regressions.push_back("src/exec/a.cpp: 1 new");
    std::string error;
    const auto parsed = json::parse(analysis_json(r), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->find("version")->as_number(), 1.0);
    EXPECT_EQ(parsed->find("files_scanned")->as_number(), 3.0);
    const json::Array& findings = parsed->find("findings")->as_array();
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].find("file")->as_string(), "src/exec/a.cpp");
    EXPECT_EQ(findings[0].find("line")->as_number(), 13.0);
    EXPECT_EQ(findings[0].find("column")->as_number(), 9.0);
    EXPECT_EQ(findings[0].find("rule")->as_string(),
              "parallel-capture-mutation");
    EXPECT_EQ(findings[0].find("severity")->as_string(), "error");
    EXPECT_TRUE(parsed->find("ratcheted")->as_bool());
    ASSERT_EQ(parsed->find("ratchet_regressions")->as_array().size(), 1u);
    EXPECT_TRUE(parsed->find("errors")->as_array().empty());
}

// ---------------------------------------------------------------------
// Rule table: machine-readable listing + doc drift.

TEST(Rules, JsonListingMatchesTable) {
    std::string error;
    const auto parsed = json::parse(rules_json(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_TRUE(parsed->is_array());
    const json::Array& arr = parsed->as_array();
    ASSERT_EQ(arr.size(), all_rules().size());
    std::size_t legacy = 0;
    for (std::size_t i = 0; i < arr.size(); ++i) {
        EXPECT_EQ(arr[i].find("name")->as_string(), all_rules()[i].name);
        if (arr[i].find("legacy")->as_bool()) ++legacy;
    }
    // The ported original set (6 rules) plus frontier-growth-outside-
    // store, added alongside the out-of-core store so plain ksa_lint
    // polices frontier containers too.
    EXPECT_EQ(legacy, 7u) << "the classic ksa_lint set grew or shrank";
}

TEST(Rules, DocTableMatchesRuleTable) {
    // doc/analysis.md section 2 carries the same rule table; both
    // directions must agree (every rule documented, nothing documented
    // that does not exist).
    const std::string doc = read_file(kRepoRoot / "doc" / "analysis.md");
    const std::size_t begin = doc.find("### The rule table");
    const std::size_t end = doc.find("### The architecture DAG");
    ASSERT_NE(begin, std::string::npos);
    ASSERT_NE(end, std::string::npos);
    const std::string section = doc.substr(begin, end - begin);

    std::set<std::string> documented;
    const std::regex row(R"(\| `([a-z0-9-]+)` \|)");
    for (std::sregex_iterator it(section.begin(), section.end(), row), last;
         it != last; ++it)
        documented.insert((*it)[1].str());

    std::set<std::string> implemented;
    for (const RuleInfo& r : all_rules()) implemented.insert(r.name);

    for (const std::string& name : implemented)
        EXPECT_TRUE(documented.count(name) != 0)
            << "rule `" << name << "` missing from doc/analysis.md";
    for (const std::string& name : documented)
        EXPECT_TRUE(implemented.count(name) != 0)
            << "doc/analysis.md documents unknown rule `" << name << "`";
}

// ---------------------------------------------------------------------
// Whole-tree gate (same check as ctest's ksa_analyze.layers_clean, but
// debuggable from the test binary).

TEST(WholeTree, AnalyzesClean) {
    AnalyzerOptions options;
    options.root = kRepoRoot;
    const AnalysisResult result = analyze(options);
    EXPECT_TRUE(result.errors.empty())
        << (result.errors.empty() ? "" : result.errors[0]);
    for (const Finding& f : result.findings)
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                      << f.message;
}
