// Unit tests for the core library: the k-set spec validators, border
// arithmetic, restriction (Definition 1), T-independence (Definition 6),
// run pasting (Lemmas 11/12), the Theorem 1 predicates and the bounded
// schedule explorer.

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "core/bounds.hpp"
#include "core/explorer.hpp"
#include "core/independence.hpp"
#include "core/kset_spec.hpp"
#include "core/pasting.hpp"
#include "core/restriction.hpp"
#include "core/theorem1.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace ksa::core {
namespace {

// ----------------------------------------------------------------- spec

TEST(KSetSpec, AcceptsCorrectRun) {
    algo::FloodingKSet algorithm(3);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, rr);
    KSetCheck check = check_kset_agreement(run, 1);
    EXPECT_TRUE(check.ok());
    EXPECT_NO_THROW(expect_kset_agreement(run, 1));
}

TEST(KSetSpec, DetectsKAgreementViolation) {
    algo::TrivialWaitFree algorithm;
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, rr);
    KSetCheck check = check_kset_agreement(run, 2);
    EXPECT_FALSE(check.k_agreement);
    EXPECT_TRUE(check.validity);
    EXPECT_TRUE(check.termination);
    EXPECT_THROW(expect_kset_agreement(run, 2), UsageError);
    // 3-set agreement is satisfied.
    EXPECT_TRUE(check_kset_agreement(run, 3).ok());
}

TEST(KSetSpec, DetectsValidityViolation) {
    // Forge a run whose decision was never proposed.
    ksa::Run run;
    run.n = 1;
    run.inputs = {5};
    StepRecord s;
    s.time = 1;
    s.process = 1;
    s.decision = 42;
    run.steps.push_back(s);
    KSetCheck check = check_kset_agreement(run, 1);
    EXPECT_FALSE(check.validity);
}

TEST(KSetSpec, DetectsTerminationViolation) {
    algo::FloodingKSet algorithm(3);  // threshold 3, but one process dead
    FailurePlan plan;
    plan.set_initially_dead(3);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), plan, rr,
                               nullptr, {.max_steps = 200});
    KSetCheck check = check_kset_agreement(run, 1);
    EXPECT_FALSE(check.termination);
}

// ---------------------------------------------------------------- bounds

TEST(Bounds, Theorem2Arithmetic) {
    EXPECT_TRUE(theorem2_impossible(5, 3, 2));    // 2*2 <= 4
    EXPECT_FALSE(theorem2_impossible(5, 2, 2));   // 2*3 > 4
    EXPECT_TRUE(theorem2_impossible(4, 3, 3));    // 3*1 <= 3
    EXPECT_TRUE(theorem2_impossible(10, 9, 9));
    // k=1, f=1 is the FLP case: impossible for every n.
    EXPECT_TRUE(theorem2_impossible(10, 1, 1));
    // One crash does not prevent 2-set agreement, though.
    EXPECT_FALSE(theorem2_impossible(10, 1, 2));
    EXPECT_EQ(theorem2_block_size(10, 7), 3);
}

TEST(Bounds, Theorem8Arithmetic) {
    // The paper's border: solvable iff k*n > (k+1)*f.
    EXPECT_TRUE(theorem8_solvable(6, 2, 1));    // majority for consensus
    EXPECT_FALSE(theorem8_solvable(6, 3, 1));   // n = 2f is not enough
    EXPECT_TRUE(theorem8_solvable(6, 3, 2));
    EXPECT_FALSE(theorem8_solvable(6, 4, 2));   // 12 > 12 fails: border
    EXPECT_TRUE(theorem8_solvable(6, 4, 3));
    EXPECT_EQ(theorem8_min_k(6, 4), 3);
    EXPECT_EQ(theorem8_max_f(6, 2), 3);
    EXPECT_EQ(theorem8_max_f(9, 1), 4);  // consensus: majority correct
}

TEST(Bounds, MutualConsistency) {
    // Everywhere in range: initial-crash solvability implies the general
    // (Theorem 2) impossibility does NOT bite at the same (n, f, k) with
    // non-initial crashes... but the reverse inclusion must hold: if
    // even initial crashes make it unsolvable, Theorem 2's bound applies.
    for (int n = 2; n <= 12; ++n)
        for (int f = 1; f < n; ++f)
            for (int k = 1; k < n; ++k)
                if (!theorem8_solvable(n, f, k)) {
                    EXPECT_TRUE(theorem2_impossible(n, f, k))
                        << "n=" << n << " f=" << f << " k=" << k;
                }
}

TEST(Bounds, SourceComponentAndFloodingBounds) {
    EXPECT_EQ(source_component_bound(9, 3), 3);
    EXPECT_EQ(max_source_components(10, 4), 2);
    EXPECT_EQ(flooding_bound(3), 4);
}

TEST(Bounds, Corollary13Band) {
    EXPECT_TRUE(corollary13_solvable(6, 1));
    EXPECT_TRUE(corollary13_solvable(6, 5));
    for (int k = 2; k <= 4; ++k) {
        EXPECT_FALSE(corollary13_solvable(6, k));
        EXPECT_TRUE(theorem10_applies(6, k));
    }
    EXPECT_FALSE(theorem10_applies(6, 1));
    EXPECT_FALSE(theorem10_applies(6, 5));
}

// ------------------------------------------------------------ restriction

TEST(Restriction, DropsSendsOutsideDomain) {
    algo::FloodingKSet base(2);
    RestrictedAlgorithm restricted(base, {1, 2});
    RoundRobinScheduler rr;
    FailurePlan plan;
    plan.set_initially_dead(3);
    ksa::Run run = execute_run(restricted, 3, distinct_inputs(3), plan, rr);
    // Nothing was ever addressed to p3.
    for (const StepRecord& s : run.steps)
        for (const Message& m : s.sent) EXPECT_NE(m.to, 3);
    EXPECT_TRUE(run.all_correct_decided());
}

TEST(Restriction, RestrictedAndFullDeadRunsAreIndistinguishable) {
    // The condition (D) correspondence, checked directly.
    algo::FloodingKSet base(2);
    RoundRobinScheduler rr1, rr2;
    ksa::Run restricted = execute_restricted(base, 4, {1, 2}, distinct_inputs(4),
                                             {}, rr1);
    FailurePlan dead;
    dead.set_initially_dead({3, 4});
    ksa::Run full = execute_run(base, 4, distinct_inputs(4), dead, rr2);
    EXPECT_TRUE(indistinguishable_for_all(restricted, full, {1, 2}));
}

TEST(Restriction, KeepsBelievingInNProcesses) {
    // A|D still uses n for its thresholds: restricting flooding with
    // threshold 3 to a 2-process domain must stall (it waits for 3
    // proposals that can never arrive).
    algo::FloodingKSet base(3);
    RoundRobinScheduler rr;
    ksa::Run run = execute_restricted(base, 4, {1, 2}, distinct_inputs(4), {},
                                      rr, nullptr, {.max_steps = 200});
    EXPECT_EQ(run.stop, StopReason::kStepLimit);
    EXPECT_FALSE(run.decision_of(1).has_value());
}

TEST(Restriction, ValidatesDomain) {
    algo::TrivialWaitFree base;
    EXPECT_THROW(RestrictedAlgorithm(base, {}), UsageError);
}

// ----------------------------------------------------------- independence

TEST(Independence, FloodingIsFResilientIndependent) {
    // threshold n-f = 3 with n=4: every set of size >= 3 can decide alone.
    algo::FloodingKSet algorithm(3);
    auto family = f_resilient_family(4, 1);
    FamilyIndependence result =
        check_family_independence(algorithm, 4, distinct_inputs(4), {}, family);
    EXPECT_TRUE(result.holds_for_all);
    EXPECT_EQ(result.witnesses.size(), family.size());
}

TEST(Independence, FloodingIsNotWaitFreeIndependent) {
    algo::FloodingKSet algorithm(3);
    IndependenceWitness w = check_set_independence(
        algorithm, 4, distinct_inputs(4), {}, {2}, {}, 200);
    EXPECT_FALSE(w.holds);  // a singleton cannot gather 3 proposals
}

TEST(Independence, TrivialAlgorithmIsWaitFreeIndependent) {
    algo::TrivialWaitFree algorithm;
    FamilyIndependence result = check_family_independence(
        algorithm, 4, distinct_inputs(4), {}, wait_free_family(4));
    EXPECT_TRUE(result.holds_for_all);
}

TEST(Independence, FamilyGenerators) {
    EXPECT_EQ(wait_free_family(3).size(), 7u);
    EXPECT_EQ(obstruction_free_family(4).size(), 4u);
    EXPECT_EQ(f_resilient_family(4, 1).size(), 5u);  // C(4,3) + C(4,4)
    auto asym = asymmetric_family(3, 2);
    EXPECT_EQ(asym.size(), 4u);
    for (const auto& s : asym)
        EXPECT_NE(std::find(s.begin(), s.end(), 2), s.end());
}

TEST(Independence, ObservationOneMonotonicity) {
    // Observation 1.(b): independence for a family implies independence
    // for each of its subsets -- exercised by checking a sub-family.
    algo::FloodingKSet algorithm(2);  // n=4, threshold 2
    auto family = f_resilient_family(4, 2);
    FamilyIndependence full =
        check_family_independence(algorithm, 4, distinct_inputs(4), {}, family);
    EXPECT_TRUE(full.holds_for_all);
    std::vector<std::vector<ProcessId>> sub(family.begin(),
                                            family.begin() + 3);
    FamilyIndependence part =
        check_family_independence(algorithm, 4, distinct_inputs(4), {}, sub);
    EXPECT_TRUE(part.holds_for_all);
}

// ---------------------------------------------------------------- pasting

TEST(Pasting, BlocksDecideOwnValuesAndStayIndistinguishable) {
    algo::FloodingKSet algorithm(2);  // n=6, threshold 2
    PasteResult paste =
        paste_partition_runs(algorithm, 6, distinct_inputs(6),
                             {{1, 2}, {3, 4}, {5, 6}}, {});
    EXPECT_TRUE(paste.all_indistinguishable);
    EXPECT_TRUE(paste.stalled_blocks.empty());
    EXPECT_EQ(paste.pasted.distinct_decisions(), (std::set<Value>{1, 3, 5}));
    // Isolated runs decide only their own block's value.
    EXPECT_EQ(paste.isolated[1].distinct_decisions(), (std::set<Value>{3}));
}

TEST(Pasting, DetectsStalledBlocks) {
    algo::FloodingKSet algorithm(4);  // threshold 4: pairs stall alone
    PasteResult paste = paste_partition_runs(algorithm, 4, distinct_inputs(4),
                                             {{1, 2}, {3, 4}}, {}, {}, 100,
                                             2000);
    EXPECT_FALSE(paste.stalled_blocks.empty());
}

TEST(Pasting, RespectsCrashPlansInsideBlocks) {
    algo::FloodingKSet algorithm(2);  // n=6, threshold 2
    FailurePlan plan;
    plan.set_initially_dead(2);  // one crash inside block {1,2,3}
    PasteResult paste = paste_partition_runs(algorithm, 6, distinct_inputs(6),
                                             {{1, 2, 3}, {4, 5, 6}}, plan);
    EXPECT_TRUE(paste.all_indistinguishable);
    EXPECT_FALSE(paste.pasted.decision_of(2).has_value());
    EXPECT_TRUE(paste.pasted.all_correct_decided());
}

// ----------------------------------------------------- theorem 1 predicates

TEST(Theorem1Predicates, PartitionSpecValidation) {
    PartitionSpec spec = make_partition_spec(5, 2, {{1, 2}});
    EXPECT_EQ(spec.d, (std::vector<ProcessId>{3, 4, 5}));
    EXPECT_EQ(spec.dbar(), (std::vector<ProcessId>{1, 2}));
    EXPECT_THROW(make_partition_spec(5, 2, {{1, 1}}), UsageError);
    EXPECT_THROW(make_partition_spec(5, 3, {{1, 2}}), UsageError);
    EXPECT_THROW(make_partition_spec(2, 3, {{1}, {2}}), UsageError);
}

TEST(Theorem1Predicates, DecDbarNeedsDistinctEligibleValues) {
    algo::FloodingKSet algorithm(2);
    PartitionScheduler sched({{1, 2}, {3, 4}});
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), {}, sched);
    std::set<Value> values;
    EXPECT_TRUE(dec_dbar_holds(run, {{1, 2}, {3, 4}}, &values));
    EXPECT_EQ(values, (std::set<Value>{1, 3}));
    // Both blocks decided the same value? Then no distinct assignment.
    ksa::Run uniform = run;
    uniform.inputs = {7, 7, 7, 7};
    EXPECT_FALSE(dec_dbar_holds(uniform, {{1, 2}, {3, 4}}, nullptr));
}

TEST(Theorem1Predicates, DecDDetectsEarlyReception) {
    algo::FloodingKSet algorithm(2);
    PartitionSpec spec = make_partition_spec(4, 2, {{1, 2}});
    // Fair run: D = {3,4} hears from {1,2} before deciding.
    RoundRobinScheduler rr;
    ksa::Run fair = execute_run(algorithm, 4, distinct_inputs(4), {}, rr);
    EXPECT_FALSE(dec_d_holds(fair, spec));
    // Partitioned run: D is silent until decided.
    PartitionScheduler part({{3, 4}});
    ksa::Run silent = execute_run(algorithm, 4, distinct_inputs(4), {}, part);
    EXPECT_TRUE(dec_d_holds(silent, spec));
}

// --------------------------------------------------------------- explorer

TEST(Explorer, TrivialAlgorithmHasOneOutcome) {
    algo::TrivialWaitFree algorithm;
    ExploreConfig cfg;
    cfg.n = 2;
    cfg.inputs = {4, 9};
    cfg.k = 2;
    cfg.max_depth = 6;
    ExploreResult result = explore_schedules(algorithm, cfg);
    EXPECT_TRUE(result.exhaustive);
    EXPECT_FALSE(result.violation_found);
    EXPECT_EQ(result.quiescent_outcomes.size(), 1u);
    EXPECT_EQ(*result.quiescent_outcomes.begin(), (std::vector<Value>{4, 9}));
}

TEST(Explorer, FindsFloodingDisagreement) {
    // Flooding with threshold 2 among 3 processes: some schedule makes
    // two processes decide different minima -- the explorer finds it.
    algo::FloodingKSet algorithm(2);
    ExploreConfig cfg;
    cfg.n = 3;
    cfg.inputs = {1, 2, 3};
    cfg.k = 1;
    cfg.max_depth = 10;
    ExploreResult result = explore_schedules(algorithm, cfg);
    EXPECT_TRUE(result.violation_found) << result.summary();
    ASSERT_FALSE(result.witness.empty());
    // Replaying the witness reproduces the violation.
    ScriptedScheduler replay(result.witness);
    ksa::Run run = execute_run(algorithm, 3, cfg.inputs, {}, replay);
    EXPECT_GT(run.distinct_decisions().size(), 1u);
}

TEST(Explorer, VerifiesFlpConsensusOnInitialCrashPlans) {
    // Exhaustively: no schedule makes the L=2 protocol on n=3 with one
    // initially dead process decide two values -- a verified small-case
    // instance of Theorem 8's possibility side (k=1, f=1, n=3).
    auto algorithm = algo::make_flp_kset(3, 1);
    FailurePlan plan;
    plan.set_initially_dead(3);
    ExploreConfig cfg;
    cfg.n = 3;
    cfg.inputs = {1, 2, 3};
    cfg.plan = plan;
    cfg.k = 1;
    cfg.max_depth = 14;
    cfg.max_states = 500000;
    ExploreResult result = explore_schedules(*algorithm, cfg);
    EXPECT_FALSE(result.violation_found) << result.summary();
    EXPECT_TRUE(result.exhaustive) << result.summary();
}

TEST(Explorer, TwoRunsProduceIdenticalReports) {
    // Regression (ksa-verify): the explorer's visited set used to be an
    // unordered_set, making "which states fall inside max_states" depend
    // on hash iteration/seeding.  Two explorations of the same
    // configuration must agree on every observable field, including in
    // the truncated case.
    algo::FloodingKSet algorithm(2);
    ExploreConfig cfg;
    cfg.n = 3;
    cfg.inputs = {1, 2, 3};
    cfg.k = 1;
    cfg.max_depth = 8;
    cfg.max_states = 300;  // deliberately truncating
    const ExploreResult a = explore_schedules(algorithm, cfg);
    const ExploreResult b = explore_schedules(algorithm, cfg);

    EXPECT_EQ(a.states_explored, b.states_explored);
    EXPECT_EQ(a.schedules_expanded, b.schedules_expanded);
    EXPECT_EQ(a.exhaustive, b.exhaustive);
    EXPECT_EQ(a.violation_found, b.violation_found);
    EXPECT_EQ(a.quiescent_outcomes, b.quiescent_outcomes);
    EXPECT_EQ(a.reachable_decision_sets, b.reachable_decision_sets);
    EXPECT_EQ(a.summary(), b.summary());
    ASSERT_EQ(a.witness.size(), b.witness.size());
    for (std::size_t i = 0; i < a.witness.size(); ++i) {
        EXPECT_EQ(a.witness[i].process, b.witness[i].process);
        EXPECT_EQ(a.witness[i].deliver, b.witness[i].deliver);
        EXPECT_EQ(a.witness[i].deliver_all, b.witness[i].deliver_all);
    }
}

TEST(Explorer, RejectsDetectorAlgorithms) {
    algo::FloodingKSet fine(1);
    ExploreConfig cfg;
    cfg.n = 1;
    cfg.inputs = {1};
    EXPECT_NO_THROW(explore_schedules(fine, cfg));
}

}  // namespace
}  // namespace ksa::core
