// Unit tests for the simulation substrate: payloads, messages, failure
// plans, the System executor, schedulers, admissibility and run queries.

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "sim/admissibility.hpp"
#include "sim/model.hpp"
#include "sim/payload.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace ksa {
namespace {

// ---------------------------------------------------------------- payload

TEST(Payload, RenderingIsCanonical) {
    Payload p = make_payload("S2", {3, 7}, {{1, 2}, {4}});
    EXPECT_EQ(p.to_string(), "S2(3,7|[1,2],[4])");
    EXPECT_EQ(make_payload("S1", {5}).to_string(), "S1(5)");
    EXPECT_EQ(make_payload("PING").to_string(), "PING()");
}

TEST(Payload, EqualityIsStructural) {
    EXPECT_EQ(make_payload("A", {1}), make_payload("A", {1}));
    EXPECT_NE(make_payload("A", {1}), make_payload("A", {2}));
    EXPECT_NE(make_payload("A", {1}), make_payload("B", {1}));
}

TEST(Message, ContentEqualityIgnoresIdentity) {
    Message a{1, 2, 3, 10, make_payload("T", {1})};
    Message b{99, 2, 3, 55, make_payload("T", {1})};
    EXPECT_TRUE(content_equal(a, b));
    EXPECT_EQ(a.to_string(), "2->3:T(1)");
}

// ------------------------------------------------------------ failure plan

TEST(FailurePlan, BasicQueries) {
    FailurePlan plan;
    plan.set_initially_dead(2);
    plan.set_crash(4, CrashSpec{3, {1, 5}});
    EXPECT_TRUE(plan.is_faulty(2));
    EXPECT_TRUE(plan.is_initially_dead(2));
    EXPECT_TRUE(plan.is_faulty(4));
    EXPECT_FALSE(plan.is_initially_dead(4));
    EXPECT_FALSE(plan.is_faulty(1));
    EXPECT_EQ(plan.allowed_steps(4), 3);
    EXPECT_EQ(plan.allowed_steps(1), -1);
    EXPECT_EQ(plan.num_faulty(), 2);
    EXPECT_EQ(plan.correct(5), (std::vector<ProcessId>{1, 3, 5}));
    EXPECT_EQ(plan.faulty(), (std::set<ProcessId>{2, 4}));
}

TEST(FailurePlan, SpecThrowsForCorrectProcess) {
    FailurePlan plan;
    EXPECT_THROW(plan.spec(1), UsageError);
}

// ---------------------------------------------------------------- system

TEST(System, TrivialAlgorithmDecidesOwnValues) {
    algo::TrivialWaitFree algorithm;
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), {}, rr);
    EXPECT_EQ(run.stop, StopReason::kQuiescent);
    for (ProcessId p = 1; p <= 4; ++p) EXPECT_EQ(run.decision_of(p), p);
    EXPECT_EQ(run.distinct_decisions().size(), 4u);
}

TEST(System, RejectsWrongInputCount) {
    algo::TrivialWaitFree algorithm;
    EXPECT_THROW(System(algorithm, 3, {1, 2}, {}), UsageError);
}

TEST(System, InitiallyDeadNeverSteps) {
    algo::TrivialWaitFree algorithm;
    FailurePlan plan;
    plan.set_initially_dead(2);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), plan, rr);
    EXPECT_EQ(run.steps_of(2), 0);
    EXPECT_FALSE(run.decision_of(2).has_value());
    EXPECT_TRUE(run.decision_of(1).has_value());
    EXPECT_EQ(run.crash_time_of(2), 1);
}

TEST(System, CrashPlanIsRealizedExactly) {
    algo::FloodingKSet algorithm(3);  // n=4, threshold 3
    FailurePlan plan;
    plan.set_crash(4, CrashSpec{2, {}});
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), plan, rr);
    EXPECT_EQ(run.steps_of(4), 2);
    EXPECT_NE(run.crash_time_of(4), kNever);
    AdmissibilityReport adm = check_admissibility(run);
    EXPECT_TRUE(adm.admissible) << run_summary(run);
}

TEST(System, OmitToDropsFinalStepSends) {
    // Process 1 crashes after its first step (the broadcast), omitting
    // its proposal to process 2 but not to process 3.
    algo::FloodingKSet algorithm(2);  // n=3, threshold 2
    FailurePlan plan;
    plan.set_crash(1, CrashSpec{1, {2}});
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), plan, rr);
    // p3 saw x1 and decides min(1,3)=1 or min over first 2 seen; p2 never
    // saw x1 so its minimum is 2 or min(2,3).
    ASSERT_TRUE(run.decision_of(3).has_value());
    ASSERT_TRUE(run.decision_of(2).has_value());
    EXPECT_EQ(*run.decision_of(3), 1);
    EXPECT_NE(*run.decision_of(2), 1);
    // The omitted message is recorded.
    bool omitted_seen = false;
    for (const StepRecord& s : run.steps)
        for (const Message& m : s.omitted)
            if (m.to == 2) omitted_seen = true;
    EXPECT_TRUE(omitted_seen);
}

TEST(System, DecidingTwiceAborts) {
    // A malicious behavior that decides twice.
    class Bad final : public Behavior {
    public:
        StepOutput on_step(const StepInput&) override {
            StepOutput out;
            out.decision = 1;
            return out;
        }
        std::string state_digest() const override { return "bad"; }
        std::unique_ptr<Behavior> clone() const override {
            return std::make_unique<Bad>(*this);
        }
    };
    class BadAlgo final : public Algorithm {
    public:
        std::unique_ptr<Behavior> make_behavior(ProcessId, int,
                                                Value) const override {
            return std::make_unique<Bad>();
        }
        std::string name() const override { return "bad"; }
    };
    BadAlgo algorithm;
    System sys(algorithm, 1, {1}, {});
    StepChoice c;
    c.process = 1;
    sys.apply_choice(c);
    EXPECT_THROW(sys.apply_choice(c), UsageError);
}

TEST(System, StepChoiceValidation) {
    algo::TrivialWaitFree algorithm;
    System sys(algorithm, 2, {1, 2}, {});
    StepChoice bad;
    bad.process = 7;
    EXPECT_THROW(sys.apply_choice(bad), UsageError);
    StepChoice ghost;
    ghost.process = 1;
    ghost.deliver.push_back(12345);  // no such message
    EXPECT_THROW(sys.apply_choice(ghost), UsageError);
}

TEST(System, DeterministicReplay) {
    algo::FloodingKSet algorithm(3);
    RoundRobinScheduler rr1, rr2;
    ksa::Run a = execute_run(algorithm, 4, distinct_inputs(4), {}, rr1);
    ksa::Run b = execute_run(algorithm, 4, distinct_inputs(4), {}, rr2);
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
        EXPECT_EQ(a.steps[i].process, b.steps[i].process);
        EXPECT_EQ(a.steps[i].digest_after, b.steps[i].digest_after);
    }
}

// The fork() contract: a snapshot taken mid-run is (a) independent of
// the original and (b) indistinguishable from it under any identical
// continuation -- the same further choices yield bit-identical digests,
// decisions and step records.  This is the primitive the snapshot
// explorer's correctness rests on (doc/performance.md).
TEST(System, ForkRoundTrip) {
    algo::FloodingKSet algorithm(2);
    System original(algorithm, 3, distinct_inputs(3), {});

    auto step_all = [](System& sys) {
        for (ProcessId p = 1; p <= 3; ++p) {
            StepChoice choice;
            choice.process = p;
            choice.deliver_all = true;
            sys.apply_choice(choice);
        }
    };

    step_all(original);  // mid-run: announcements still in flight to p1
    auto forked = original.fork(/*verify_digests=*/true);

    // The snapshot is digest-identical at the fork point...
    for (ProcessId p = 1; p <= 3; ++p) {
        EXPECT_EQ(forked->last_digest(p), original.last_digest(p));
        EXPECT_EQ(forked->buffer(p).size(), original.buffer(p).size());
        EXPECT_EQ(forked->steps_of(p), original.steps_of(p));
    }
    EXPECT_EQ(forked->now(), original.now());

    // ...and stays identical under the same continuation.
    step_all(original);
    step_all(*forked);
    for (ProcessId p = 1; p <= 3; ++p) {
        EXPECT_EQ(forked->last_digest(p), original.last_digest(p));
        EXPECT_EQ(forked->decision_of(p), original.decision_of(p));
    }

    ksa::Run run_a = original.finish(StopReason::kQuiescent);
    ksa::Run run_b = forked->finish(StopReason::kQuiescent);
    ASSERT_EQ(run_a.steps.size(), run_b.steps.size());
    for (std::size_t i = 0; i < run_a.steps.size(); ++i) {
        EXPECT_EQ(run_a.steps[i].process, run_b.steps[i].process);
        EXPECT_EQ(run_a.steps[i].digest_after, run_b.steps[i].digest_after);
    }
    EXPECT_EQ(run_a.distinct_decisions(), run_b.distinct_decisions());
}

TEST(System, ForkIsIndependentOfTheOriginal) {
    algo::FloodingKSet algorithm(2);
    System original(algorithm, 3, distinct_inputs(3), {});
    StepChoice first;
    first.process = 1;
    first.deliver_all = true;
    original.apply_choice(first);

    auto forked = original.fork();
    const std::string digest_before = original.last_digest(2);
    const std::size_t buffered_before = original.buffer(2).size();

    // Drive only the fork; the original must not move.
    for (ProcessId p = 1; p <= 3; ++p) {
        StepChoice choice;
        choice.process = p;
        choice.deliver_all = true;
        forked->apply_choice(choice);
    }
    EXPECT_EQ(original.last_digest(2), digest_before);
    EXPECT_EQ(original.buffer(2).size(), buffered_before);
    EXPECT_FALSE(original.decided(2));
    EXPECT_NE(forked->last_digest(2), digest_before);  // the fork did move
}

// -------------------------------------------------------------- schedulers

TEST(RoundRobin, DrainsAllBuffersBeforeStopping) {
    algo::FloodingKSet algorithm(2);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, rr);
    EXPECT_EQ(run.stop, StopReason::kQuiescent);
    for (ProcessId p = 1; p <= 3; ++p)
        EXPECT_TRUE(run.undelivered_to(p).empty());
}

TEST(RandomScheduler, IsFairAndDeterministicPerSeed) {
    algo::FloodingKSet algorithm(4);
    RandomScheduler s1(123), s2(123), s3(321);
    ksa::Run a = execute_run(algorithm, 5, distinct_inputs(5), {}, s1);
    ksa::Run b = execute_run(algorithm, 5, distinct_inputs(5), {}, s2);
    ksa::Run c = execute_run(algorithm, 5, distinct_inputs(5), {}, s3);
    EXPECT_EQ(a.steps.size(), b.steps.size());
    EXPECT_EQ(a.distinct_decisions(), b.distinct_decisions());
    EXPECT_EQ(a.stop, StopReason::kQuiescent);
    EXPECT_EQ(c.stop, StopReason::kQuiescent);
}

TEST(PartitionScheduler, IsolatesBlocksUntilDecision) {
    algo::FloodingKSet algorithm(2);  // n=4, threshold 2
    PartitionScheduler sched({{1, 2}, {3, 4}});
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), {}, sched);
    EXPECT_TRUE(sched.stalled_blocks().empty());
    // Block {1,2} decides min(1,2)=1; block {3,4} decides min(3,4)=3.
    EXPECT_EQ(*run.decision_of(1), 1);
    EXPECT_EQ(*run.decision_of(2), 1);
    EXPECT_EQ(*run.decision_of(3), 3);
    EXPECT_EQ(*run.decision_of(4), 3);
    // No cross-block reception before the release time.
    EXPECT_TRUE(run.silent_from_until(1, {3, 4}, sched.release_time()));
    EXPECT_TRUE(run.silent_from_until(3, {1, 2}, sched.release_time()));
    // Admissible: delayed messages were eventually delivered.
    EXPECT_TRUE(check_admissibility(run).admissible);
}

TEST(PartitionScheduler, ReportsStalledBlocks) {
    algo::FloodingKSet algorithm(3);  // n=4, threshold 3: block of 2 stalls
    PartitionScheduler sched({{1, 2}}, 50);
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), {}, sched);
    EXPECT_EQ(sched.stalled_blocks(), std::vector<int>{0});
    // After release everyone decides (threshold reachable system-wide).
    EXPECT_TRUE(run.all_correct_decided());
}

TEST(StagedScheduler, FilterControlsDeliveryByPayload) {
    // Hold back every message whose tag is "VAL" from reaching p2.
    algo::FloodingKSet algorithm(1);  // decide immediately on own value
    StagedScheduler::Stage stage;
    stage.active = {1, 2, 3};
    stage.filter = [](const Message& m, ProcessId dest) {
        return !(dest == 2 && m.payload.tag == "VAL");
    };
    StagedScheduler sched({stage});
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, sched);
    EXPECT_TRUE(run.all_correct_decided());
    // p2 received nothing before release.
    EXPECT_TRUE(run.silent_from_until(2, {1, 3}, sched.release_time()));
}

TEST(ScriptedScheduler, ReplaysExactly) {
    algo::TrivialWaitFree algorithm;
    std::vector<StepChoice> script;
    StepChoice c1;
    c1.process = 2;
    StepChoice c2;
    c2.process = 1;
    script.push_back(c1);
    script.push_back(c2);
    ScriptedScheduler sched(script);
    System sys(algorithm, 2, {10, 20}, {});
    ksa::Run run = sys.execute(sched);
    ASSERT_EQ(run.steps.size(), 2u);
    EXPECT_EQ(run.steps[0].process, 2);
    EXPECT_EQ(run.steps[1].process, 1);
}

// ----------------------------------------------------------- admissibility

TEST(Admissibility, StepLimitIsInconclusive) {
    // Flooding with threshold 4 in a 4-process system where one process
    // is dead can never decide: the run hits the step limit.
    algo::FloodingKSet algorithm(4);
    FailurePlan plan;
    plan.set_initially_dead(4);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), plan, rr,
                          nullptr, {.max_steps = 500});
    EXPECT_EQ(run.stop, StopReason::kStepLimit);
    AdmissibilityReport adm = check_admissibility(run);
    EXPECT_FALSE(adm.conclusive);
}

TEST(Admissibility, FlagsUndeliveredMessages) {
    // A scheduler that stops early leaves messages undelivered.
    algo::FloodingKSet algorithm(2);
    std::vector<StepChoice> script;
    StepChoice c;
    c.process = 1;
    script.push_back(c);  // p1 broadcasts, then we stop
    ScriptedScheduler sched(script);
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, sched);
    AdmissibilityReport adm = check_admissibility(run);
    EXPECT_FALSE(adm.admissible);
    EXPECT_FALSE(adm.violations.empty());
}

// ----------------------------------------------------- run queries / Def 2

TEST(Run, DigestSequencesAndIndistinguishability) {
    algo::FloodingKSet algorithm(2);
    // Run A: p3 dead.  Run B: p3 alive but silenced until 1,2 decide.
    FailurePlan plan_a;
    plan_a.set_initially_dead(3);
    RoundRobinScheduler rr;
    ksa::Run a = execute_run(algorithm, 3, distinct_inputs(3), plan_a, rr);

    PartitionScheduler part({{1, 2}});
    ksa::Run b = execute_run(algorithm, 3, distinct_inputs(3), {}, part);

    EXPECT_TRUE(indistinguishable_for(a, b, 1));
    EXPECT_TRUE(indistinguishable_for(a, b, 2));
    EXPECT_TRUE(indistinguishable_for_all(a, b, {1, 2}));
    // p3's experience differs radically (dead vs deciding).
    EXPECT_FALSE(indistinguishable_for(a, b, 3));
}

TEST(Run, ReceptionQueries) {
    algo::FloodingKSet algorithm(3);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, rr);
    auto times = run.receptions_from(1, {2, 3});
    EXPECT_FALSE(times.empty());
    EXPECT_FALSE(run.silent_from_until(1, {2, 3}, kNever));
    EXPECT_TRUE(run.silent_from_until(1, {2, 3}, times.front()));
}

TEST(Run, DistinctDecisionsByGroup) {
    algo::TrivialWaitFree algorithm;
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 4, {5, 5, 7, 7}, {}, rr);
    EXPECT_EQ(run.distinct_decisions().size(), 2u);
    EXPECT_EQ(run.distinct_decisions({1, 2}).size(), 1u);
    EXPECT_EQ(run.distinct_decisions({2, 3}).size(), 2u);
}

// ------------------------------------------------------------------ model

TEST(Model, DescriptorsAndClassification) {
    ModelDescriptor masync = ModelDescriptor::asynchronous();
    EXPECT_FALSE(consensus_solvable_with_one_crash(masync));

    ModelDescriptor t2 = ModelDescriptor::theorem2();
    EXPECT_FALSE(consensus_solvable_with_one_crash(t2));

    ModelDescriptor sync = t2;
    sync.communication = CommSync::kSynchronous;
    EXPECT_TRUE(consensus_solvable_with_one_crash(sync));

    ModelDescriptor ordered = masync;
    ordered.order = MessageOrder::kOrdered;
    ordered.transmission = Transmission::kBroadcast;
    EXPECT_TRUE(consensus_solvable_with_one_crash(ordered));

    EXPECT_NE(masync.to_string(), t2.to_string());
    EXPECT_THROW(
        consensus_solvable_with_one_crash(ModelDescriptor::asynchronous_with_fd()),
        UsageError);
}

TEST(Trace, SummaryAndFullTraceRender) {
    algo::TrivialWaitFree algorithm;
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 2, {4, 9}, {}, rr);
    std::string summary = run_summary(run);
    EXPECT_NE(summary.find("trivial-wait-free"), std::string::npos);
    EXPECT_NE(summary.find("p1:4"), std::string::npos);
    std::string full = trace_string(run);
    EXPECT_NE(full.find("DECIDE"), std::string::npos);
}

}  // namespace
}  // namespace ksa
