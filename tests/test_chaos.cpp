// Tests for the chaos layer's adversary itself: profiles, the
// FaultInjector decorator, its guard-mode admissibility promise across
// every base scheduler, havoc-mode detection, and the serialization of
// fault events.
//
// The central property (the reason the layer exists): in guard mode the
// injector may drop, duplicate, delay and burst all it wants -- the
// produced run must stay MASYNC-admissible, bit-identically replayable
// through the DeterminismAuditor, and the Theorem 8 algorithm must still
// satisfy k-set agreement on the solvable side.  In havoc mode the run
// is deliberately damaged, and the point is that the checkers *say so*.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "algo/initial_clique.hpp"
#include "algo/kset_paxos.hpp"
#include "chaos/chaos_trace.hpp"
#include "chaos/fault_injector.hpp"
#include "chaos/profile.hpp"
#include "chaos/resilience.hpp"
#include "check/determinism.hpp"
#include "core/kset_spec.hpp"
#include "fd/sources.hpp"
#include "fd/validators.hpp"
#include "sim/admissibility.hpp"
#include "sim/schedulers.hpp"
#include "sim/serialize.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace ksa {
namespace {

// ---------------------------------------------------------------- profiles

TEST(ChaosProfile, FactoriesValidateAndDescribe) {
    const chaos::ChaosProfile guard = chaos::guarded_profile(7);
    EXPECT_NO_THROW(guard.validate());
    EXPECT_EQ(guard.mode, chaos::ChaosProfile::Mode::kAdmissible);
    EXPECT_NE(guard.describe().find("seed=7"), std::string::npos);
    EXPECT_NE(guard.describe().find("mode=guard"), std::string::npos);

    const chaos::ChaosProfile havoc = chaos::havoc_profile(7);
    EXPECT_NO_THROW(havoc.validate());
    EXPECT_EQ(havoc.mode, chaos::ChaosProfile::Mode::kHavoc);
    EXPECT_NE(havoc.describe().find("mode=havoc"), std::string::npos);
}

TEST(ChaosProfile, ValidateRejectsBadKnobs) {
    chaos::ChaosProfile p = chaos::guarded_profile(1);
    p.drop_per_mille = -1;
    EXPECT_THROW(p.validate(), UsageError);

    p = chaos::guarded_profile(1);
    p.delay_per_mille = 1001;
    EXPECT_THROW(p.validate(), UsageError);

    // A positive crash rate without a crash budget is a configuration
    // error, not a silent no-op.
    p = chaos::guarded_profile(1);
    p.crash_per_mille = 100;
    p.max_injected_crashes = 0;
    EXPECT_THROW(p.validate(), UsageError);
}

// ------------------------------------------------- the guard-mode promise

/// One guard-mode chaos run of the Theorem 8 algorithm on the solvable
/// side (n=4, f=1, k=1: 1*4 > 2*1), over the given base scheduler.
Run guarded_run(Scheduler& base, std::uint64_t seed) {
    const int n = 4, f = 1;
    const auto algorithm = algo::make_flp_kset(n, f);  // L = 3
    FailurePlan plan;
    plan.set_initially_dead(2);
    chaos::FaultInjector injector(base, chaos::guarded_profile(seed));
    return execute_run(*algorithm, n, distinct_inputs(n), plan, injector);
}

void expect_admissible_correct_and_replayable(const Run& run,
                                              const std::string& what) {
    const AdmissibilityReport adm = check_admissibility(run);
    EXPECT_TRUE(adm.admissible && adm.conclusive)
        << what << ": " << (adm.violations.empty() ? "step limit"
                                                   : adm.violations.front());
    const auto check = core::check_kset_agreement(run, 1);
    EXPECT_TRUE(check.ok()) << what << ": " << run_summary(run);

    const auto algorithm = algo::make_flp_kset(run.n, 1);
    check::DeterminismAuditor auditor(*algorithm, {});
    const check::ReplayReport replay = auditor.audit_replay(run);
    EXPECT_TRUE(replay.deterministic) << what << ": " << replay.divergence;
}

TEST(FaultInjector, GuardModeAdmissibleOverRoundRobin) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        RoundRobinScheduler base;
        const ksa::Run run = guarded_run(base, seed);
        expect_admissible_correct_and_replayable(
            run, "round-robin seed=" + std::to_string(seed));
    }
}

TEST(FaultInjector, GuardModeAdmissibleOverRandom) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        RandomScheduler base(seed);
        const ksa::Run run = guarded_run(base, seed * 31 + 1);
        expect_admissible_correct_and_replayable(
            run, "random seed=" + std::to_string(seed));
    }
}

TEST(FaultInjector, GuardModeAdmissibleOverPartition) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        // Small per-block budget: the dead p2 stalls block {1,2}, and the
        // interesting phase is the release anyway.
        PartitionScheduler base({{1, 2}, {3, 4}}, /*block_budget=*/200);
        const ksa::Run run = guarded_run(base, seed);
        expect_admissible_correct_and_replayable(
            run, "partition seed=" + std::to_string(seed));
    }
}

TEST(FaultInjector, GuardModeAdmissibleOverLockstep) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        LockstepScheduler base;
        const ksa::Run run = guarded_run(base, seed);
        expect_admissible_correct_and_replayable(
            run, "lockstep seed=" + std::to_string(seed));
    }
}

TEST(FaultInjector, DiceAreLiveAndRecorded) {
    // Across the seed range the injector must actually have injected
    // something, and every injected fault must be visible in the Run.
    int total = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        RoundRobinScheduler base;
        chaos::FaultInjector injector(base, chaos::guarded_profile(seed));
        const auto algorithm = algo::make_flp_kset(4, 1);
        FailurePlan plan;
        plan.set_initially_dead(2);
        const ksa::Run run = execute_run(*algorithm, 4, distinct_inputs(4), plan,
                                    injector);
        EXPECT_EQ(static_cast<std::size_t>(
                      injector.stats().total_faults()),
                  run.num_fault_events())
            << "seed=" << seed;
        total += injector.stats().total_faults();
    }
    EXPECT_GT(total, 0) << "no fault events across 20 seeds: dice dead";
}

TEST(FaultInjector, NameEmbedsBaseAndProfile) {
    RoundRobinScheduler base;
    chaos::FaultInjector injector(base, chaos::guarded_profile(9));
    EXPECT_NE(injector.name().find("round-robin+chaos("), std::string::npos);
    EXPECT_NE(injector.name().find("seed=9"), std::string::npos);
}

// ------------------------------------------------------- havoc detection

TEST(FaultInjector, HavocModeIsFlaggedInadmissible) {
    // Havoc drops messages addressed to correct processes permanently;
    // the admissibility checker must flag the lost delivery, and the
    // resilience classifier must report kInadmissible -- on at least one
    // seed in a small range (drops are probabilistic).
    bool flagged = false;
    for (std::uint64_t seed = 1; seed <= 10 && !flagged; ++seed) {
        RoundRobinScheduler base;
        chaos::FaultInjector injector(base, chaos::havoc_profile(seed));
        const auto algorithm = algo::make_flp_kset(4, 0);  // L = 4
        const ksa::Run run = execute_run(*algorithm, 4, distinct_inputs(4),
                                    FailurePlan{}, injector,
                                    /*oracle=*/nullptr, {.max_steps = 4000});
        if (injector.stats().drops == 0) continue;
        const AdmissibilityReport adm = check_admissibility(run);
        if (adm.conclusive) {
            EXPECT_FALSE(adm.admissible) << run_summary(run);
            EXPECT_EQ(chaos::classify_run(run, 1),
                      chaos::Outcome::kInadmissible);
        } else {
            // Dropping everyone's messages can also starve termination:
            // the step limit is the other legitimate detection.
            EXPECT_EQ(run.stop, StopReason::kStepLimit);
        }
        flagged = true;
    }
    EXPECT_TRUE(flagged) << "havoc profile never dropped in 10 seeds";
}

TEST(FaultInjector, InjectedCrashIsFlaggedByFdValidators) {
    // An FD-backed algorithm whose oracle answers from the *static* plan
    // while chaos crashes a process mid-run: the recorded Sigma history
    // keeps quoting the victim, so liveness fails against the realized
    // faulty set and the validator must say so.
    const int n = 4, k = 2;
    algo::KSetPaxos algorithm(k);
    fd::ComposedOracle oracle(
        std::make_unique<fd::CorrectSetQuorum>(n, FailurePlan{}),
        std::make_unique<fd::StableLeaders>(std::vector<ProcessId>{1, 3}, 0));

    chaos::ChaosProfile profile = chaos::guarded_profile(3);
    profile.drop_per_mille = 0;
    profile.duplicate_per_mille = 0;
    profile.delay_per_mille = 0;
    profile.burst_per_mille = 0;
    profile.crash_per_mille = 400;
    profile.max_injected_crashes = 1;

    RoundRobinScheduler base;
    chaos::FaultInjector injector(base, profile);
    const ksa::Run run = execute_run(algorithm, n, distinct_inputs(n),
                                FailurePlan{}, injector, &oracle,
                                {.max_steps = 4000});
    ASSERT_EQ(injector.stats().crashes, 1);
    ASSERT_EQ(run.injected_crash_victims().size(), 1u);

    const fd::FdValidation sigma = fd::validate_sigma_k(run, 1);
    EXPECT_FALSE(sigma.ok)
        << "static-plan oracle survived an injected crash";
}

// ------------------------------------------------- serialization of faults

TEST(ChaosSerialization, FaultEventsRoundTrip) {
    // Find a guard run with a mixed bag of fault events and check the
    // KSARUN-1 round trip preserves them exactly.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        RoundRobinScheduler base;
        const ksa::Run run = guarded_run(base, seed);
        if (run.num_fault_events() == 0) continue;

        const std::string text = run_to_string(run);
        std::istringstream in(text);
        const ksa::Run back = read_run(in);
        EXPECT_EQ(run_to_string(back), text) << "seed=" << seed;
        EXPECT_EQ(back.num_fault_events(), run.num_fault_events());
        EXPECT_EQ(back.scheduler, run.scheduler);

        // The extracted schedule carries the fault events too.
        const chaos::ChaosTrace trace = chaos::extract_chaos_trace(back);
        EXPECT_EQ(trace.num_faults(), run.num_fault_events());
        return;  // one faulted run suffices
    }
    FAIL() << "no guard run with fault events in 20 seeds";
}

// ------------------------------------- satellite: FailurePlan conveniences

TEST(FailurePlanOmitAll, BuildsFullOmissionSet) {
    const CrashSpec spec = CrashSpec::omitting_all(2, 4);
    EXPECT_EQ(spec.after_own_steps, 2);
    EXPECT_EQ(spec.omit_to, (std::set<ProcessId>{1, 2, 3, 4}));
    EXPECT_EQ(spec.to_string(), "after 2 steps omit{1,2,3,4}");

    FailurePlan plan;
    plan.set_crash_omit_all(3, 1, 4);
    EXPECT_TRUE(plan.is_faulty(3));
    EXPECT_EQ(plan.spec(3).omit_to.size(), 4u);
    EXPECT_EQ(plan.to_string(), "p3 after 1 step omit{1,2,3,4}");
}

TEST(FailurePlanOmitAll, RejectsInitiallyDead) {
    EXPECT_THROW(CrashSpec::omitting_all(0, 4), UsageError);
    FailurePlan plan;
    EXPECT_THROW(plan.set_crash(2, CrashSpec{0, {1}}), UsageError);
}

// ------------------------------- satellite: scheduler seed in run metadata

TEST(RandomSchedulerSeed, NameAndRunRecordTheSeed) {
    RandomScheduler sched(42);
    EXPECT_EQ(sched.seed(), 42u);
    EXPECT_EQ(sched.name(), "random(seed=42,max_age=64)");

    const auto algorithm = algo::make_flp_kset(3, 0);
    const ksa::Run run = execute_run(*algorithm, 3, distinct_inputs(3),
                                FailurePlan{}, sched);
    EXPECT_EQ(run.scheduler, "random(seed=42,max_age=64)");
    // ...and it survives serialization and shows in the trace header.
    const std::string text = run_to_string(run);
    EXPECT_NE(text.find("sched"), std::string::npos);
    std::istringstream in(text);
    EXPECT_EQ(read_run(in).scheduler, run.scheduler);
    EXPECT_NE(trace_string(run).find("scheduler: random(seed=42"),
              std::string::npos);
}

}  // namespace
}  // namespace ksa
