// Unit tests for the protocol implementations under benign and
// adversarial schedules.

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "algo/paxos_consensus.hpp"
#include "algo/quorum_leader_kset.hpp"
#include "algo/ranked_set_agreement.hpp"
#include "core/kset_spec.hpp"
#include "fd/sources.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace ksa {
namespace {

// ------------------------------------------------------ FLP initial clique

TEST(InitialClique, ConsensusWithoutCrashes) {
    auto algorithm = algo::make_flp_consensus(5);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(*algorithm, 5, distinct_inputs(5), {}, rr);
    core::expect_kset_agreement(run, 1);
    EXPECT_EQ(run.distinct_decisions().size(), 1u);
}

TEST(InitialClique, ConsensusWithInitialCrashes) {
    // n=5: L = 3, tolerates f = 2 initial crashes.
    auto algorithm = algo::make_flp_consensus(5);
    FailurePlan plan;
    plan.set_initially_dead({2, 4});
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(*algorithm, 5, distinct_inputs(5), plan, rr);
    core::expect_kset_agreement(run, 1);
}

TEST(InitialClique, ConsensusUnderRandomSchedules) {
    auto algorithm = algo::make_flp_consensus(7);
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        FailurePlan plan;
        plan.set_initially_dead({static_cast<ProcessId>(1 + seed % 7)});
        RandomScheduler sched(seed);
        ksa::Run run = execute_run(*algorithm, 7, distinct_inputs(7), plan,
                                   sched);
        core::expect_kset_agreement(run, 1);
    }
}

TEST(InitialClique, KSetWithManyInitialCrashes) {
    // n=6, f=4: L=2, solvable for k with k*6 > (k+1)*4, i.e. k >= 3.
    auto algorithm = algo::make_flp_kset(6, 4);
    FailurePlan plan;
    plan.set_initially_dead({1, 3, 5, 6});
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(*algorithm, 6, distinct_inputs(6), plan, rr);
    core::expect_kset_agreement(run, 3);
}

TEST(InitialClique, DecisionCountBoundedBySourceComponents) {
    // n=9, L=3 => at most floor(9/3)=3 distinct decisions, whatever the
    // (crash-free) schedule does.
    algo::InitialCliqueKSet algorithm(3);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        RandomScheduler sched(seed);
        ksa::Run run = execute_run(algorithm, 9, distinct_inputs(9), {}, sched);
        EXPECT_TRUE(run.all_correct_decided());
        EXPECT_LE(run.distinct_decisions().size(), 3u) << run_summary(run);
    }
}

TEST(InitialClique, PartitionedRunRealizesTheBound) {
    // Three isolated triples, L=3: each triple forms its own source
    // component and decides its own minimum.
    algo::InitialCliqueKSet algorithm(3);
    PartitionScheduler sched({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
    ksa::Run run = execute_run(algorithm, 9, distinct_inputs(9), {}, sched);
    EXPECT_TRUE(sched.stalled_blocks().empty());
    EXPECT_EQ(run.distinct_decisions(), (std::set<Value>{1, 4, 7}));
}

TEST(InitialClique, ValidatesThresholdRange) {
    algo::InitialCliqueKSet algorithm(9);
    EXPECT_THROW(algorithm.make_behavior(1, 5, 1), UsageError);
    EXPECT_THROW(algo::make_flp_kset(5, 5), UsageError);
}

TEST(InitialClique, NotLiveUnderMidRunCrash) {
    // The protocol only tolerates *initial* crashes: a process crashing
    // after its stage-1 broadcast can leave others waiting forever for
    // its stage-2 message -- exactly the gap Theorem 2 proves essential.
    auto algorithm = algo::make_flp_consensus(5);  // L=3
    FailurePlan plan;
    plan.set_crash(1, CrashSpec{1, {}});  // dies after stage-1 broadcast
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(*algorithm, 5, distinct_inputs(5), plan, rr,
                               nullptr, {.max_steps = 2000});
    EXPECT_EQ(run.stop, StopReason::kStepLimit);
    EXPECT_FALSE(run.all_correct_decided());
}

// ---------------------------------------------------------------- flooding

TEST(Flooding, DecidesMinimumUnderFairSchedule) {
    algo::FloodingKSet algorithm(4);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 4, {7, 3, 9, 5}, {}, rr);
    for (ProcessId p = 1; p <= 4; ++p) EXPECT_EQ(*run.decision_of(p), 3);
}

TEST(Flooding, SolvesFPlus1SetAgreement) {
    // threshold n-f with f = 2: never more than f+1 = 3 distinct values.
    const int n = 6, f = 2;
    auto algorithm = algo::make_flooding(n, f);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        RandomScheduler sched(seed);
        ksa::Run run = execute_run(*algorithm, n, distinct_inputs(n), {}, sched);
        auto check = core::check_kset_agreement(run, f + 1);
        EXPECT_TRUE(check.ok()) << run_summary(run);
    }
}

TEST(Flooding, FPlus1IsTight) {
    // A staged schedule realizing exactly f+1 distinct decisions: member
    // p_i hears the window {p_i..p_{i+n-f-1}}.
    const int n = 4, f = 2;
    auto algorithm = algo::make_flooding(n, f);  // threshold 2
    StagedScheduler::Stage stage;
    stage.active = {1, 2, 3, 4};
    stage.filter = [](const Message& m, ProcessId dest) {
        return m.from == dest % 4 + 1;  // hear only your cyclic successor
    };
    StagedScheduler sched({stage});
    ksa::Run run = execute_run(*algorithm, n, distinct_inputs(n), {}, sched);
    // p1 sees {1,2}->1, p2 sees {2,3}->2, p3 sees {3,4}->3, p4 {4,1}->1.
    EXPECT_EQ(run.distinct_decisions(), (std::set<Value>{1, 2, 3}));
    EXPECT_EQ(run.distinct_decisions().size(),
              static_cast<std::size_t>(f + 1));
}

// ------------------------------------------------------------------- Paxos

std::unique_ptr<FdOracle> benign_oracle(int n, const FailurePlan& plan) {
    ProcessId leader = 0;
    for (ProcessId p = 1; p <= n && leader == 0; ++p)
        if (!plan.is_faulty(p)) leader = p;
    return fd::make_benign_sigma_omega(n, plan, {leader});
}

TEST(Paxos, ConsensusNoFailures) {
    algo::PaxosConsensus algorithm;
    FailurePlan plan;
    auto oracle = benign_oracle(4, plan);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 4, {9, 4, 6, 2}, plan, rr,
                               oracle.get());
    core::expect_kset_agreement(run, 1);
}

TEST(Paxos, ConsensusWithCrashes) {
    algo::PaxosConsensus algorithm;
    FailurePlan plan;
    plan.set_initially_dead(1);
    plan.set_crash(3, CrashSpec{2, {}});
    auto oracle = benign_oracle(5, plan);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        auto orc = benign_oracle(5, plan);
        RandomScheduler sched(seed);
        ksa::Run run = execute_run(algorithm, 5, distinct_inputs(5), plan,
                                   sched, orc.get());
        core::expect_kset_agreement(run, 1);
    }
}

TEST(Paxos, SafeUnderCompetingLeadersPreGst) {
    // Before stabilization every process believes itself the leader --
    // ballots arbitrate, so agreement still holds once LD stabilizes.
    algo::PaxosConsensus algorithm;
    FailurePlan plan;
    auto quorums = std::make_unique<fd::CorrectSetQuorum>(4, plan);
    auto leaders = std::make_unique<fd::StableLeaders>(
        std::vector<ProcessId>{2}, 30, [](const QueryContext& c) {
            return std::vector<ProcessId>{c.querier};
        });
    fd::ComposedOracle oracle(std::move(quorums), std::move(leaders));
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), plan, rr,
                               &oracle);
    core::expect_kset_agreement(run, 1);
}

// -------------------------------------------------------------- ranked set

TEST(RankedSet, AllCorrectFairSchedule) {
    algo::RankedSetAgreement algorithm;
    FailurePlan plan;
    auto oracle = std::make_unique<fd::ComposedOracle>(
        std::make_unique<fd::CorrectSetQuorum>(5, plan), nullptr);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 5, distinct_inputs(5), plan, rr,
                               oracle.get());
    core::expect_kset_agreement(run, 4);
}

TEST(RankedSet, SoleSurvivorDecidesViaLoneliness) {
    algo::RankedSetAgreement algorithm;
    FailurePlan plan;
    for (ProcessId p = 2; p <= 4; ++p) plan.set_initially_dead(p);
    auto oracle = std::make_unique<fd::ComposedOracle>(
        std::make_unique<fd::CorrectSetQuorum>(4, plan), nullptr);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), plan, rr,
                               oracle.get());
    EXPECT_EQ(run.decision_of(1), 1);
}

TEST(RankedSet, SmallestCorrectProcessDecidesViaRelay) {
    // p1 never hears a smaller id and is never lonely; it terminates by
    // copying a decision announcement.
    algo::RankedSetAgreement algorithm;
    FailurePlan plan;
    auto oracle = std::make_unique<fd::ComposedOracle>(
        std::make_unique<fd::CorrectSetQuorum>(3, plan), nullptr);
    RandomScheduler sched(99);
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), plan, sched,
                               oracle.get());
    EXPECT_TRUE(run.decision_of(1).has_value());
    core::expect_kset_agreement(run, 2);
}

// ----------------------------------------------------- quorum-leader k-set

TEST(QuorumLeader, BenignRunsStayWithinKValues) {
    // k=2 leaders, benign oracle: at most 2 distinct decisions.
    algo::QuorumLeaderKSet algorithm;
    FailurePlan plan;
    auto oracle = std::make_unique<fd::ComposedOracle>(
        std::make_unique<fd::CorrectSetQuorum>(5, plan),
        std::make_unique<fd::StableLeaders>(std::vector<ProcessId>{1, 4}, 0));
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 5, distinct_inputs(5), plan, rr,
                               oracle.get());
    auto check = core::check_kset_agreement(run, 2);
    EXPECT_TRUE(check.ok()) << run_summary(run);
}

TEST(QuorumLeader, TerminatesWhenSomeLeaderIsCorrect) {
    algo::QuorumLeaderKSet algorithm;
    FailurePlan plan;
    plan.set_initially_dead(1);  // a faulty leader...
    auto oracle = std::make_unique<fd::ComposedOracle>(
        std::make_unique<fd::CorrectSetQuorum>(5, plan),
        std::make_unique<fd::StableLeaders>(std::vector<ProcessId>{1, 3}, 0));
    RandomScheduler sched(5);
    ksa::Run run = execute_run(algorithm, 5, distinct_inputs(5), plan, sched,
                               oracle.get());
    EXPECT_TRUE(run.all_correct_decided());  // ...p3 carries the run
}

// ------------------------------------------- clone fidelity / fold_state
//
// The snapshot explorer rests on two per-behavior contracts:
//
//   * clone() reproduces the full local state (digest-identical, and
//     fold_state-identical, to the original);
//   * fold_state(h) distinguishes exactly what state_digest()
//     distinguishes -- equal digests must fold to equal hashes and
//     distinct digests to distinct hashes (a 128-bit collision would be
//     astronomically unlikely; an actual under-folding bug is not).
//
// These tests drive real executions and audit both contracts at every
// reached state, for every algorithm that overrides fold_state plus one
// that relies on the string-digest default.

Digest128 fold_hash(const Behavior& b) {
    StateHasher h;
    b.fold_state(h);
    return h.digest();
}

void audit_clone_and_fold(const Algorithm& algorithm, int n, FailurePlan plan,
                          int rounds, FdOracle* oracle = nullptr) {
    System sys(algorithm, n, distinct_inputs(n), plan, oracle);
    sys.set_recording(false);
    std::map<std::string, Digest128> hash_of_digest;
    std::map<Digest128, std::string> digest_of_hash;

    auto audit = [&] {
        for (ProcessId p = 1; p <= n; ++p) {
            if (sys.crashed(p)) continue;
            const Behavior& live = sys.behavior_of(p);
            const std::string digest = live.state_digest();
            const Digest128 hash = fold_hash(live);

            // Clone fidelity: digest- and fold-identical to the original.
            const auto clone = sys.clone_behavior(p);
            EXPECT_EQ(clone->state_digest(), digest) << "p" << p;
            EXPECT_EQ(fold_hash(*clone), hash) << "p" << p;
            // The live accessor agrees with the behavior it exposes.
            EXPECT_EQ(sys.last_digest(p), digest) << "p" << p;

            // Partition agreement, both directions.
            const auto [it, fresh_digest] = hash_of_digest.emplace(digest, hash);
            if (!fresh_digest) {
                EXPECT_EQ(it->second, hash) << "digest re-folded differently: "
                                            << digest;
            }
            const auto [jt, fresh_hash] = digest_of_hash.emplace(hash, digest);
            if (!fresh_hash) {
                EXPECT_EQ(jt->second, digest)
                        << "fold collision: " << hash.to_string();
            }
        }
    };

    audit();
    for (int r = 0; r < rounds; ++r)
        for (ProcessId p = 1; p <= n; ++p) {
            if (sys.crashed(p)) continue;
            StepChoice choice;
            choice.process = p;
            choice.deliver_all = true;
            sys.apply_choice(choice);
            audit();
        }
}

TEST(CloneAndFold, Flooding) {
    algo::FloodingKSet algorithm(2);
    audit_clone_and_fold(algorithm, 3, {}, 4);
}

TEST(CloneAndFold, TrivialWaitFree) {
    algo::TrivialWaitFree algorithm;
    audit_clone_and_fold(algorithm, 3, {}, 2);
}

TEST(CloneAndFold, InitialCliqueWithInitialDeath) {
    auto algorithm = algo::make_flp_kset(4, 2);
    FailurePlan plan;
    plan.set_initially_dead({2});
    audit_clone_and_fold(*algorithm, 4, plan, 5);
}

TEST(CloneAndFold, InitialCliqueWithMidRunCrash) {
    auto algorithm = algo::make_flp_kset(3, 1);
    FailurePlan plan;
    plan.set_crash(1, CrashSpec{2, {}});  // dies on its second step
    audit_clone_and_fold(*algorithm, 3, plan, 5);
}

TEST(CloneAndFold, DefaultFoldStateMatchesDigest) {
    // Paxos does not override fold_state: the Behavior default folds the
    // digest string itself, so the partition agreement is the contract
    // applied to the fallback path (and the clone audit still bites).
    algo::PaxosConsensus algorithm;
    FailurePlan plan;
    auto oracle = benign_oracle(4, plan);
    audit_clone_and_fold(algorithm, 4, plan, 6, oracle.get());
}

}  // namespace
}  // namespace ksa
