// Tests for the run-statistics layer.

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "sim/schedulers.hpp"
#include "sim/stats.hpp"
#include "sim/system.hpp"

namespace ksa {
namespace {

TEST(Stats, CountsMatchRunRecord) {
    algo::FloodingKSet algorithm(3);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), {}, rr);
    RunStats stats = compute_stats(run);

    EXPECT_EQ(stats.n, 3);
    EXPECT_EQ(stats.total_steps, run.steps.size());
    EXPECT_EQ(stats.total_messages, run.messages_sent());
    // Flooding broadcasts once: each process sends n-1 = 2 messages.
    for (const ProcessStats& ps : stats.per_process)
        EXPECT_EQ(ps.messages_sent, 2);
    // Traffic matrix row sums equal per-process sends.
    for (int i = 0; i < 3; ++i) {
        int row = 0;
        for (int j = 0; j < 3; ++j) row += stats.traffic[i][j];
        EXPECT_EQ(row, stats.per_process[i].messages_sent);
        EXPECT_EQ(stats.traffic[i][i], 0);  // no self-sends in flooding
    }
}

TEST(Stats, DecisionLatencies) {
    algo::FloodingKSet algorithm(2);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 2, distinct_inputs(2), {}, rr);
    RunStats stats = compute_stats(run);
    for (const ProcessStats& ps : stats.per_process) {
        EXPECT_NE(ps.decision_time, kNever);
        EXPECT_EQ(ps.decision_time, run.decision_time_of(ps.process));
        EXPECT_GE(ps.decision_own_steps, 1);
    }
    EXPECT_GT(stats.mean_decision_own_steps, 0.0);
    EXPECT_EQ(stats.last_decision_time,
              std::max(run.decision_time_of(1), run.decision_time_of(2)));
}

TEST(Stats, OmittedSendsAreCounted) {
    algo::FloodingKSet algorithm(2);
    FailurePlan plan;
    plan.set_crash(1, CrashSpec{1, {2, 3}});
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), plan, rr);
    RunStats stats = compute_stats(run);
    EXPECT_EQ(stats.total_omitted, 2u);
}

TEST(Stats, UndecidedProcessHasNoLatency) {
    algo::FloodingKSet algorithm(3);
    FailurePlan plan;
    plan.set_initially_dead(3);
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), plan, rr,
                               nullptr, {.max_steps = 200});
    RunStats stats = compute_stats(run);
    EXPECT_EQ(stats.per_process[2].steps, 0);
    EXPECT_EQ(stats.per_process[2].decision_own_steps, -1);
    EXPECT_FALSE(stats.summary().empty());
}

TEST(Stats, QuadraticMessageShapeOfFlp) {
    // The two-stage protocol sends exactly 2 broadcasts per live process.
    for (int n : {5, 9, 13}) {
        auto algorithm = algo::make_flp_consensus(n);
        RoundRobinScheduler rr;
        ksa::Run run = execute_run(*algorithm, n, distinct_inputs(n), {}, rr);
        RunStats stats = compute_stats(run);
        EXPECT_EQ(stats.total_messages,
                  static_cast<std::size_t>(2 * n * (n - 1)));
    }
}

}  // namespace
}  // namespace ksa
