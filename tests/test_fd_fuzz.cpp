// Fuzz tests for the failure-detector layer: randomly generated LEGAL
// oracle histories must validate; randomly corrupted ones must be
// rejected in the right way.

#include <gtest/gtest.h>

#include <random>

#include "fd/loneliness.hpp"
#include "fd/sources.hpp"
#include "fd/validators.hpp"

namespace ksa::fd {
namespace {

ksa::Run history_run(int n, FailurePlan plan, std::vector<FdEvent> events) {
    ksa::Run run;
    run.n = n;
    run.plan = std::move(plan);
    run.inputs = std::vector<Value>(n, 0);
    run.fd_history = std::move(events);
    return run;
}

class SigmaKFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SigmaKFuzz, PartitionQuorumsValidateForTheRightK) {
    // Generate a random partition of 1..n into k blocks; emit per-block
    // quorums.  The history must validate as Sigma_k and (generically)
    // fail for Sigma_{k-1} when the blocks are genuinely disjoint and
    // each block emitted at least one sample.
    std::mt19937_64 rng(GetParam());
    const int n = 4 + static_cast<int>(rng() % 5);   // 4..8
    const int k = 2 + static_cast<int>(rng() % 3);   // 2..4
    if (k > n) return;

    std::vector<std::vector<ProcessId>> blocks(k);
    for (ProcessId p = 1; p <= n; ++p)
        blocks[p == 1 ? 0 : rng() % k].push_back(p);
    // Ensure no block is empty (move a process if needed).
    for (int b = 0; b < k; ++b)
        if (blocks[b].empty()) {
            for (int c = 0; c < k; ++c)
                if (blocks[c].size() > 1) {
                    blocks[b].push_back(blocks[c].back());
                    blocks[c].pop_back();
                    break;
                }
        }
    for (auto& b : blocks) std::sort(b.begin(), b.end());

    std::vector<FdEvent> events;
    Time t = 1;
    for (const auto& block : blocks)
        for (ProcessId p : block)
            events.push_back({t++, p, FdSample{block, {}}});
    ksa::Run run = history_run(n, {}, std::move(events));

    EXPECT_TRUE(validate_sigma_k(run, k).ok);
    EXPECT_TRUE(validate_sigma_k(run, n).ok);  // weaker class: still fine
    // k pairwise-disjoint non-empty quorums violate Sigma_{k-1}.
    EXPECT_FALSE(validate_sigma_k(run, k - 1).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SigmaKFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

class OmegaKFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OmegaKFuzz, StabilizedHistoriesValidateAndCorruptedOnesDoNot) {
    std::mt19937_64 rng(GetParam());
    const int n = 3 + static_cast<int>(rng() % 5);
    const int k = 1 + static_cast<int>(rng() % (n - 1));

    // Random stable LD of size k containing the (correct) process n.
    std::vector<ProcessId> ld{static_cast<ProcessId>(n)};
    while (static_cast<int>(ld.size()) < k) {
        ProcessId p = static_cast<ProcessId>(1 + rng() % n);
        if (std::find(ld.begin(), ld.end(), p) == ld.end()) ld.push_back(p);
    }
    std::sort(ld.begin(), ld.end());

    std::vector<FdEvent> events;
    Time t = 1;
    // Chaotic prefix: arbitrary size-k sets.
    for (int i = 0; i < 6; ++i) {
        std::vector<ProcessId> noise;
        while (static_cast<int>(noise.size()) < k) {
            ProcessId p = static_cast<ProcessId>(1 + rng() % n);
            if (std::find(noise.begin(), noise.end(), p) == noise.end())
                noise.push_back(p);
        }
        std::sort(noise.begin(), noise.end());
        events.push_back(
            {t++, static_cast<ProcessId>(1 + rng() % n), FdSample{{}, noise}});
    }
    // Stabilized suffix: every process sees LD.
    for (ProcessId p = 1; p <= n; ++p)
        events.push_back({t++, p, FdSample{{}, ld}});

    ksa::Run run = history_run(n, {}, events);
    EXPECT_TRUE(validate_omega_k(run, k).ok);

    // Corruption 1: one final sample deviates -> eventual leadership off.
    ksa::Run split = run;
    if (n >= 2) {
        auto& leaders = split.fd_history.back().sample.leaders;
        leaders[0] = leaders[0] % n + 1;
        std::sort(leaders.begin(), leaders.end());
        leaders.erase(std::unique(leaders.begin(), leaders.end()),
                      leaders.end());
        while (static_cast<int>(leaders.size()) < k) {
            ProcessId p = static_cast<ProcessId>(1 + rng() % n);
            if (std::find(leaders.begin(), leaders.end(), p) == leaders.end())
                leaders.push_back(p);
        }
        std::sort(leaders.begin(), leaders.end());
        if (leaders != ld) {
            EXPECT_FALSE(validate_omega_k(split, k).ok);
        }
    }

    // Corruption 2: wrong size -> validity off.
    ksa::Run fat = run;
    fat.fd_history.front().sample.leaders.push_back(
        fat.fd_history.front().sample.leaders.empty()
            ? 1
            : fat.fd_history.front().sample.leaders.front());
    EXPECT_FALSE(validate_omega_k(fat, k).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OmegaKFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

class LonelinessFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LonelinessFuzz, RoundTripPreservesValidity) {
    // Random Sigma_{n-1}-legal quorum histories (at most n-1 lonely
    // processes, the rest paired) survive the L round trip.
    std::mt19937_64 rng(GetParam());
    const int n = 3 + static_cast<int>(rng() % 4);
    const ProcessId social = static_cast<ProcessId>(1 + rng() % n);
    std::vector<FdEvent> events;
    Time t = 1;
    for (ProcessId p = 1; p <= n; ++p) {
        std::vector<ProcessId> q;
        if (p == social) {
            ProcessId buddy = p % n + 1;
            q = {std::min(p, buddy), std::max(p, buddy)};
        } else {
            q = {p};
        }
        events.push_back({t++, p, FdSample{q, {}}});
    }
    ksa::Run run = history_run(n, {}, std::move(events));
    ASSERT_TRUE(validate_sigma_k(run, n - 1).ok);
    EXPECT_TRUE(check_sigma_loneliness_equivalence(run).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LonelinessFuzz,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace ksa::fd
