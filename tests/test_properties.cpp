// Property-based and fuzz tests across module boundaries:
//   * protocol guarantees under randomized schedules and crash plans,
//   * admissibility of every scheduler's output,
//   * full certification sweeps of the Theorem 2 and Theorem 10 drivers,
//   * metamorphic properties (replay determinism, serialization).

#include <gtest/gtest.h>

#include <random>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "algo/paxos_consensus.hpp"
#include "algo/quorum_leader_kset.hpp"
#include "algo/ranked_set_agreement.hpp"
#include "core/bounds.hpp"
#include "core/kset_spec.hpp"
#include "core/theorem10.hpp"
#include "core/theorem2.hpp"
#include "core/theorem8.hpp"
#include "fd/sources.hpp"
#include "fd/validators.hpp"
#include "sim/admissibility.hpp"
#include "sim/schedulers.hpp"
#include "sim/serialize.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace ksa {
namespace {

// ---------------------------------------------- randomized FLP k-set sweep

struct FlpSweep {
    int n, f, k;
};

class FlpKSetProperty : public ::testing::TestWithParam<FlpSweep> {};

TEST_P(FlpKSetProperty, SpecHoldsUnderRandomCrashSetsAndSchedules) {
    const auto [n, f, k] = GetParam();
    ASSERT_TRUE(core::theorem8_solvable(n, f, k));
    std::mt19937_64 rng(static_cast<std::uint64_t>(n * 1000 + f * 10 + k));
    for (int trial = 0; trial < 12; ++trial) {
        std::vector<ProcessId> ids;
        for (ProcessId p = 1; p <= n; ++p) ids.push_back(p);
        std::shuffle(ids.begin(), ids.end(), rng);
        const int crashes = static_cast<int>(rng() % (f + 1));
        std::vector<ProcessId> dead(ids.begin(), ids.begin() + crashes);
        core::Theorem8Trial t = core::theorem8_trial(n, f, k, dead, rng());
        EXPECT_TRUE(t.check.ok())
            << "n=" << n << " f=" << f << " k=" << k << " trial=" << trial
            << " " << run_summary(t.run);
        EXPECT_LE(t.distinct_decisions, k);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlpKSetProperty,
    ::testing::Values(FlpSweep{3, 1, 1}, FlpSweep{5, 2, 1}, FlpSweep{7, 3, 1},
                      FlpSweep{5, 3, 2}, FlpSweep{7, 4, 2}, FlpSweep{8, 5, 2},
                      FlpSweep{6, 4, 3}, FlpSweep{9, 6, 3}, FlpSweep{10, 7, 3},
                      FlpSweep{8, 6, 4}, FlpSweep{12, 8, 3},
                      FlpSweep{11, 5, 1}));

// --------------------------------------------------- paxos agreement fuzz

class PaxosFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaxosFuzz, UniformAgreementUnderChaos) {
    const std::uint64_t seed = GetParam();
    std::mt19937_64 rng(seed);
    const int n = 3 + static_cast<int>(rng() % 4);  // 3..6

    // Random crash plan: fewer than half faulty, random step budgets.
    FailurePlan plan;
    const int f = static_cast<int>(rng() % ((n - 1) / 2 + 1));
    std::vector<ProcessId> ids;
    for (ProcessId p = 1; p <= n; ++p) ids.push_back(p);
    std::shuffle(ids.begin(), ids.end(), rng);
    for (int i = 0; i < f; ++i)
        plan.set_crash(ids[i],
                       CrashSpec{static_cast<int>(rng() % 6), {}});

    // Pre-GST chaos: every process sees itself as leader; after a random
    // GST a correct leader stabilizes.
    ProcessId leader = 0;
    for (ProcessId p = 1; p <= n && leader == 0; ++p)
        if (!plan.is_faulty(p)) leader = p;
    const Time gst = static_cast<Time>(rng() % 40);
    auto quorums = std::make_unique<fd::CorrectSetQuorum>(n, plan);
    auto leaders = std::make_unique<fd::StableLeaders>(
        std::vector<ProcessId>{leader}, gst, [](const QueryContext& c) {
            return std::vector<ProcessId>{c.querier};
        });
    fd::ComposedOracle oracle(std::move(quorums), std::move(leaders));

    algo::PaxosConsensus algorithm;
    RandomScheduler sched(rng());
    ksa::Run run = execute_run(algorithm, n, distinct_inputs(n), plan, sched,
                          &oracle, {.max_steps = 60000});

    // Uniform agreement must hold in every prefix; termination whenever
    // the run is decisive.
    EXPECT_LE(run.distinct_decisions().size(), 1u)
        << "seed=" << seed << "\n"
        << run_summary(run);
    if (run.stop == StopReason::kQuiescent) {
        auto check = core::check_kset_agreement(run, 1);
        EXPECT_TRUE(check.ok()) << "seed=" << seed << " " << run_summary(run);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

// ------------------------------------------------- ranked-set safety fuzz

class RankedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RankedFuzz, NeverMoreThanNMinus1Values) {
    const std::uint64_t seed = GetParam();
    std::mt19937_64 rng(seed);
    const int n = 3 + static_cast<int>(rng() % 4);

    // Adversarial-but-legal Sigma_{n-1}: a random set of n-1 processes
    // sees singleton quorums; the remaining one sees a pair.
    std::vector<ProcessId> ids;
    for (ProcessId p = 1; p <= n; ++p) ids.push_back(p);
    std::shuffle(ids.begin(), ids.end(), rng);
    const ProcessId social = ids.front();
    const ProcessId buddy = ids.back() == social ? ids[1] : ids.back();

    class StressQuorum final : public fd::QuorumSource {
    public:
        StressQuorum(ProcessId social, ProcessId buddy)
            : social_(social), buddy_(buddy) {}
        std::vector<ProcessId> quorum(const QueryContext& ctx) override {
            if (ctx.querier == social_) {
                std::vector<ProcessId> q{social_, buddy_};
                std::sort(q.begin(), q.end());
                return q;
            }
            return {ctx.querier};
        }
        std::string name() const override { return "stress"; }

    private:
        ProcessId social_, buddy_;
    };
    fd::ComposedOracle oracle(std::make_unique<StressQuorum>(social, buddy),
                              nullptr);

    algo::RankedSetAgreement algorithm;
    RandomScheduler sched(rng());
    ksa::Run run = execute_run(algorithm, n, distinct_inputs(n), {}, sched, &oracle);
    auto check = core::check_kset_agreement(run, n - 1);
    EXPECT_TRUE(check.ok()) << "seed=" << seed << " " << run_summary(run);
    // And the recorded quorum history really is Sigma_{n-1}-admissible.
    EXPECT_TRUE(fd::validate_sigma_k(run, n - 1).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankedFuzz,
                         ::testing::Range<std::uint64_t>(1, 31));

// ----------------------------------------------- admissibility everywhere

class SchedulerAdmissibility : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SchedulerAdmissibility, EverySchedulerYieldsAdmissibleRuns) {
    const std::uint64_t seed = GetParam();
    std::mt19937_64 rng(seed);
    const int n = 4 + static_cast<int>(rng() % 3);
    const int f = 1 + static_cast<int>(rng() % 2);
    auto algorithm = algo::make_flooding(n, f);

    FailurePlan plan;
    plan.set_crash(static_cast<ProcessId>(1 + rng() % n),
                   CrashSpec{static_cast<int>(rng() % 4), {}});

    std::vector<std::unique_ptr<Scheduler>> schedulers;
    schedulers.push_back(std::make_unique<RoundRobinScheduler>());
    schedulers.push_back(std::make_unique<RandomScheduler>(rng()));
    std::vector<ProcessId> block;
    for (ProcessId p = 1; p <= n - f; ++p) block.push_back(p);
    schedulers.push_back(std::make_unique<PartitionScheduler>(
        std::vector<std::vector<ProcessId>>{block}));

    for (auto& sched : schedulers) {
        ksa::Run run = execute_run(*algorithm, n, distinct_inputs(n), plan, *sched);
        AdmissibilityReport adm = check_admissibility(run);
        EXPECT_TRUE(adm.admissible && adm.conclusive)
            << sched->name() << " seed=" << seed << "\n"
            << (adm.violations.empty() ? "" : adm.violations[0]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerAdmissibility,
                         ::testing::Range<std::uint64_t>(1, 21));

// ----------------------------------------- full driver certification sweeps

struct T2Point {
    int n, f, k;
};

class Theorem2Sweep : public ::testing::TestWithParam<T2Point> {};

TEST_P(Theorem2Sweep, CertificateCompletes) {
    const auto [n, f, k] = GetParam();
    algo::FloodingKSet candidate(n - f);
    core::Theorem2Result r = core::run_theorem2(candidate, n, f, k, 4000);
    EXPECT_TRUE(r.certificate.complete()) << r.summary();
    EXPECT_TRUE(r.condition_c_analytic);
    // The violating run is admissible and decisive.
    EXPECT_TRUE(r.certificate.violating_admissibility.admissible);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem2Sweep,
    ::testing::Values(T2Point{4, 2, 1}, T2Point{5, 3, 2}, T2Point{6, 4, 2},
                      T2Point{7, 4, 2}, T2Point{7, 5, 3}, T2Point{8, 6, 3},
                      T2Point{9, 6, 2}, T2Point{10, 8, 4}, T2Point{12, 9, 3},
                      T2Point{6, 5, 5}));

struct T10Point {
    int n, k;
};

class Theorem10Sweep : public ::testing::TestWithParam<T10Point> {};

TEST_P(Theorem10Sweep, CertificateAndLemma9Complete) {
    const auto [n, k] = GetParam();
    algo::QuorumLeaderKSet candidate;
    core::Theorem10Result r = core::run_theorem10(candidate, n, k, 4000);
    EXPECT_TRUE(r.certificate.complete()) << r.summary();
    EXPECT_TRUE(r.partition_validation.ok) << r.summary();
    EXPECT_TRUE(r.sigma_omega_validation.ok) << r.summary();
    EXPECT_EQ(r.certificate.violating_values.size(),
              static_cast<std::size_t>(k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem10Sweep,
    ::testing::Values(T10Point{5, 2}, T10Point{5, 3}, T10Point{6, 2},
                      T10Point{6, 4}, T10Point{7, 3}, T10Point{8, 2},
                      T10Point{8, 6}, T10Point{9, 4}, T10Point{10, 5},
                      T10Point{12, 3}));

// ------------------------------------------------------ metamorphic checks

class ReplayMetamorphic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayMetamorphic, RecordedScheduleReplaysToIdenticalDigests) {
    const std::uint64_t seed = GetParam();
    auto algorithm = algo::make_flp_consensus(5);
    FailurePlan plan;
    plan.set_initially_dead(static_cast<ProcessId>(1 + seed % 5));
    RandomScheduler random(seed);
    ksa::Run original =
        execute_run(*algorithm, 5, distinct_inputs(5), plan, random);

    ScriptedScheduler script(schedule_of(original));
    ksa::Run replayed =
        execute_run(*algorithm, 5, distinct_inputs(5), plan, script);
    ASSERT_EQ(original.steps.size(), replayed.steps.size());
    for (std::size_t i = 0; i < original.steps.size(); ++i)
        EXPECT_EQ(original.steps[i].digest_after,
                  replayed.steps[i].digest_after);
    // And the serialized form of both runs is byte-identical (modulo the
    // stop reason and the scheduler label, which the script cannot know;
    // step-wise replay drivers copy the label via set_scheduler_label).
    ksa::Run normalized = replayed;
    normalized.stop = original.stop;
    normalized.scheduler = original.scheduler;
    EXPECT_EQ(run_to_string(original), run_to_string(normalized));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayMetamorphic,
                         ::testing::Range<std::uint64_t>(1, 16));

// --------------------------------------- benign detector histories validate

TEST(DetectorHistories, BenignOracleHistoriesValidate) {
    // Every (Sigma_k, Omega_k) history produced by the benign oracle on a
    // real protocol run passes the Definition 4/5 validators.
    for (int n : {3, 5, 7}) {
        FailurePlan plan;
        plan.set_initially_dead(n);  // the last process is dead
        algo::PaxosConsensus algorithm;
        auto oracle = fd::make_benign_sigma_omega(n, plan, {1});
        RoundRobinScheduler rr;
        ksa::Run run = execute_run(algorithm, n, distinct_inputs(n), plan, rr,
                              oracle.get());
        EXPECT_TRUE(fd::validate_sigma_omega_k(run, 1).ok) << "n=" << n;
    }
}

TEST(DetectorHistories, PartitionOracleHistoriesSatisfyLemma9Broadly) {
    // Sweep partitions of several systems: every partition-detector
    // history validates for (Sigma_k, Omega_k).
    for (int n : {4, 6, 8}) {
        for (int k = 2; k <= n - 2; ++k) {
            algo::QuorumLeaderKSet candidate;
            auto fd_blocks = core::theorem10_fd_blocks(n, k);
            auto ld = core::theorem10_leader_set(n, k);
            FailurePlan plan;
            auto oracle =
                fd::make_partition_detector(n, k, fd_blocks, plan, ld, 0);
            RoundRobinScheduler rr;
            ksa::Run run = execute_run(candidate, n, distinct_inputs(n), plan, rr,
                                  oracle.get());
            EXPECT_TRUE(fd::lemma9_check(run, fd_blocks, k).ok)
                << "n=" << n << " k=" << k;
        }
    }
}

}  // namespace
}  // namespace ksa
