// Tests for the Byzantine fault-injection subsystem: the seeded payload
// mutator, the kCorruptMessage / kEquivocate fault actions and their
// injected-id spaces, the FailurePlan Byzantine bookkeeping, KSARUN-1
// serialization, replay byte-identity across every base scheduler,
// Byzantine-aware classification and admissibility, shrinker support
// for forged deliveries, and the Bouzid-Imbs-Raynal boundary sweep with
// its graceful-degradation (inconclusive + retry) machinery.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "algo/initial_clique.hpp"
#include "chaos/chaos_trace.hpp"
#include "chaos/fault_injector.hpp"
#include "chaos/profile.hpp"
#include "chaos/resilience.hpp"
#include "chaos/shrink.hpp"
#include "check/determinism.hpp"
#include "core/bounds.hpp"
#include "sim/admissibility.hpp"
#include "sim/byzantine.hpp"
#include "sim/message.hpp"
#include "sim/schedulers.hpp"
#include "sim/serialize.hpp"
#include "sim/system.hpp"

namespace ksa {
namespace {

// ------------------------------------------------------ the id spaces

TEST(ByzantineIds, SpacesAreDisjointAndInvertible) {
    const MessageId src = 12345;
    const MessageId corrupt = corrupted_message_id(src);
    EXPECT_TRUE(is_injected_message_id(corrupt));
    EXPECT_TRUE(is_corruption_id(corrupt));
    EXPECT_FALSE(is_equivocation_id(corrupt));
    EXPECT_EQ(corrupt - kCorruptionIdBase, src);

    const MessageId equiv = equivocated_message_id(src, 3);
    EXPECT_TRUE(is_injected_message_id(equiv));
    EXPECT_TRUE(is_equivocation_id(equiv));
    EXPECT_FALSE(is_corruption_id(equiv));
    EXPECT_EQ((equiv - kEquivocationIdBase) / kEquivocationFanout, src);
    EXPECT_EQ((equiv - kEquivocationIdBase) % kEquivocationFanout,
              MessageId{3});

    // Duplicate-clone ids stay below the corruption base.
    const MessageId clone = kInjectedMessageIdBase + src * 16 + 1;
    EXPECT_TRUE(is_injected_message_id(clone));
    EXPECT_FALSE(is_corruption_id(clone));
    EXPECT_FALSE(is_equivocation_id(clone));
}

// ------------------------------------------------------- the mutator

Payload sample_payload() {
    Payload p;
    p.tag = "S2";
    p.ints = {2, 4};
    p.lists = {{1, 3}};
    return p;
}

TEST(ByzantineMutator, CorruptIsDeterministicAndPlausible) {
    const Payload original = sample_payload();
    const Payload a = corrupt_payload(original, 99, 4);
    const Payload b = corrupt_payload(original, 99, 4);
    EXPECT_TRUE(a == b) << "same seed must mutate identically";

    // Structure is preserved; only values change, and they stay in the
    // plausible id/proposal range [1, n].
    EXPECT_EQ(a.tag, original.tag);
    ASSERT_EQ(a.ints.size(), original.ints.size());
    ASSERT_EQ(a.lists.size(), original.lists.size());
    ASSERT_EQ(a.lists[0].size(), original.lists[0].size());
    for (Value v : a.ints) {
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 4);
    }
    for (int v : a.lists[0]) {
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 4);
    }
}

TEST(ByzantineMutator, CorruptAlwaysChangesSomething) {
    // The dice-selected pivot scalar is always rewritten to a different
    // value (n >= 2 guarantees an alternative), so a corruption fault is
    // never a silent no-op.
    const Payload original = sample_payload();
    for (std::uint64_t seed = 1; seed <= 50; ++seed)
        EXPECT_FALSE(corrupt_payload(original, seed, 4) == original)
            << "seed=" << seed;
}

TEST(ByzantineMutator, EquivocateDivergesAcrossReceivers) {
    const Payload original = sample_payload();
    // Same seed, different receivers: the variants must not all agree,
    // otherwise "equivocation" collapses into plain corruption.
    bool diverged = false;
    for (std::uint64_t seed = 1; seed <= 10 && !diverged; ++seed) {
        const Payload to1 = equivocate_payload(original, seed, 1, 4);
        const Payload to2 = equivocate_payload(original, seed, 2, 4);
        diverged = !(to1 == to2);
    }
    EXPECT_TRUE(diverged);
    // And per receiver it is deterministic.
    EXPECT_TRUE(equivocate_payload(original, 7, 2, 4) ==
                equivocate_payload(original, 7, 2, 4));
}

// ------------------------------------------- FailurePlan bookkeeping

TEST(FailurePlanByzantine, NoteAccumulatesAndRenders) {
    FailurePlan plan;
    EXPECT_FALSE(plan.is_byzantine(2));
    EXPECT_EQ(plan.num_byzantine(), 0);

    plan.note_byzantine(2, 1, 0);
    plan.note_byzantine(2, 0, 2);
    plan.note_byzantine(5, 1, 1);
    EXPECT_TRUE(plan.is_byzantine(2));
    EXPECT_TRUE(plan.is_byzantine(5));
    EXPECT_FALSE(plan.is_byzantine(1));
    EXPECT_EQ(plan.num_byzantine(), 2);
    EXPECT_EQ(plan.byzantine_spec(2).corruptions, 1);
    EXPECT_EQ(plan.byzantine_spec(2).equivocations, 2);
    EXPECT_EQ(plan.byzantine(), (std::set<ProcessId>{2, 5}));
    EXPECT_NE(plan.to_string().find("byzantine(corrupt=1,equiv=2)"),
              std::string::npos);
}

// --------------------------------------------------- the BIR boundary

TEST(ByzantineBounds, NecessaryConditionMatchesFormula) {
    for (int n = 1; n <= 10; ++n)
        for (int k = 1; k <= n; ++k)
            for (int f = 0; f <= n - 1; ++f)
                EXPECT_EQ(core::byzantine_kset_necessary(n, f, k),
                          static_cast<long long>(k) * n >
                              static_cast<long long>(2 * k + 1) * f)
                    << "n=" << n << " k=" << k << " f=" << f;
}

TEST(ByzantineBounds, ConsensusNeedsNGreaterThan3F) {
    // k = 1 specializes to the classical n > 3f.
    EXPECT_TRUE(core::byzantine_kset_necessary(4, 1, 1));
    EXPECT_FALSE(core::byzantine_kset_necessary(3, 1, 1));
    EXPECT_FALSE(core::byzantine_kset_necessary(6, 2, 1));
    EXPECT_TRUE(core::byzantine_kset_necessary(7, 2, 1));
    EXPECT_EQ(core::byzantine_max_f(7, 1), 2);
    EXPECT_EQ(core::byzantine_max_f(4, 1), 1);
    // f = 0 is always fine, and max_f grows with k.
    for (int n = 2; n <= 8; ++n) {
        EXPECT_TRUE(core::byzantine_kset_necessary(n, 0, 1));
        EXPECT_LE(core::byzantine_max_f(n, 1), core::byzantine_max_f(n, 2));
    }
}

// -------------------------------------- injection end to end + replay

/// One Byzantine-profile chaos run of the Theorem 8 algorithm over the
/// given base scheduler, bounded so equivocation-induced stalls cannot
/// make the test slow.
ksa::Run byzantine_run(Scheduler& base, std::uint64_t seed) {
    const int n = 4, f = 1;
    const auto algorithm = algo::make_flp_kset(n, f);  // L = 3
    chaos::FaultInjector injector(base, chaos::byzantine_profile(seed, -1));
    return execute_run(*algorithm, n, distinct_inputs(n), FailurePlan{},
                       injector, /*oracle=*/nullptr, {.max_steps = 4000});
}

/// The run must be audited against the SAME algorithm instance family
/// that produced it (L differs across f), so the caller passes it in.
void expect_replay_byte_identical(const Algorithm& algorithm,
                                  const ksa::Run& run,
                                  const std::string& what) {
    check::DeterminismAuditor auditor(algorithm, {}, {.max_steps = 4000});
    const check::ReplayReport replay = auditor.audit_replay(run);
    EXPECT_TRUE(replay.deterministic) << what << ": " << replay.divergence;
}

TEST(ByzantineReplay, ByteIdenticalOverRoundRobin) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        RoundRobinScheduler base;
        expect_replay_byte_identical(*algo::make_flp_kset(4, 1),
                                     byzantine_run(base, seed),
                                     "round-robin seed=" +
                                         std::to_string(seed));
    }
}

TEST(ByzantineReplay, ByteIdenticalOverRandom) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        RandomScheduler base(seed);
        expect_replay_byte_identical(*algo::make_flp_kset(4, 1),
                                     byzantine_run(base, seed * 31 + 1),
                                     "random seed=" + std::to_string(seed));
    }
}

TEST(ByzantineReplay, ByteIdenticalOverPartition) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        PartitionScheduler base({{1, 2}, {3, 4}}, /*block_budget=*/200);
        expect_replay_byte_identical(*algo::make_flp_kset(4, 1),
                                     byzantine_run(base, seed),
                                     "partition seed=" +
                                         std::to_string(seed));
    }
}

TEST(ByzantineReplay, ByteIdenticalOverLockstep) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        LockstepScheduler base;
        expect_replay_byte_identical(*algo::make_flp_kset(4, 1),
                                     byzantine_run(base, seed),
                                     "lockstep seed=" + std::to_string(seed));
    }
}

TEST(ByzantineInjection, DiceAreLiveAndFullyRecorded) {
    int corruptions = 0, equivocations = 0;
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        RandomScheduler base(seed);
        const ksa::Run run = byzantine_run(base, seed);
        // Every Byzantine fault event is visible in the run: tampered
        // originals, forged replacements, and the plan's victim set.
        std::set<ProcessId> victims;
        int tampered = 0, forged = 0;
        for (const StepRecord& step : run.steps) {
            tampered += static_cast<int>(step.tampered.size());
            forged += static_cast<int>(step.forged.size());
            for (const Message& m : step.tampered) victims.insert(m.from);
            for (const Message& m : step.forged)
                EXPECT_TRUE(is_corruption_id(m.id) ||
                            is_equivocation_id(m.id));
        }
        EXPECT_EQ(tampered, forged) << "seed=" << seed;
        EXPECT_EQ(victims, run.plan.byzantine()) << "seed=" << seed;
        EXPECT_EQ(victims, run.byzantine_senders()) << "seed=" << seed;
        for (ProcessId p : victims) {
            const ByzantineSpec spec = run.plan.byzantine_spec(p);
            corruptions += spec.corruptions;
            equivocations += spec.equivocations;
        }
    }
    EXPECT_GT(corruptions, 0) << "corruption dice dead across 25 seeds";
    EXPECT_GT(equivocations, 0) << "equivocation dice dead across 25 seeds";
}

TEST(ByzantineInjection, VictimCapBoundsDistinctSenders) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        RandomScheduler base(seed);
        const int n = 4;
        const auto algorithm = algo::make_flp_kset(n, 1);
        chaos::ChaosProfile profile = chaos::byzantine_profile(seed, 1);
        chaos::FaultInjector injector(base, profile);
        const ksa::Run run =
            execute_run(*algorithm, n, distinct_inputs(n), FailurePlan{},
                        injector, nullptr, {.max_steps = 4000});
        EXPECT_LE(run.plan.num_byzantine(), 1) << "seed=" << seed;
        // Per-victim event budget holds too.
        for (ProcessId p : run.plan.byzantine()) {
            const ByzantineSpec spec = run.plan.byzantine_spec(p);
            EXPECT_LE(spec.corruptions + spec.equivocations,
                      profile.max_faults_per_victim)
                << "seed=" << seed;
        }
    }
}

TEST(ByzantineSerialization, RoundTripIsExact) {
    bool exercised = false;
    for (std::uint64_t seed = 1; seed <= 25 && !exercised; ++seed) {
        RandomScheduler base(seed);
        const ksa::Run run = byzantine_run(base, seed);
        if (run.plan.num_byzantine() == 0) continue;
        exercised = true;
        const std::string text = run_to_string(run);
        // The KSARUN-1 extensions are present...
        EXPECT_NE(text.find("byz "), std::string::npos);
        // ...and the round-trip is byte-exact.
        std::istringstream in(text);
        const ksa::Run back = read_run(in);
        EXPECT_EQ(run_to_string(back), text) << "seed=" << seed;
        EXPECT_EQ(back.plan.byzantine(), run.plan.byzantine());
    }
    EXPECT_TRUE(exercised) << "no Byzantine run in 25 seeds";
}

// ------------------------------- classification under Byzantine plans

/// A handcrafted decisive run: every process decides the given value (or
/// does not decide, when the value is 0).
ksa::Run handcrafted_run(const std::vector<Value>& decisions) {
    ksa::Run run;
    run.n = static_cast<int>(decisions.size());
    run.algorithm = "handcrafted";
    for (int p = 1; p <= run.n; ++p) run.inputs.push_back(p);
    Time t = 0;
    for (int p = 1; p <= run.n; ++p) {
        StepRecord step;
        step.time = ++t;
        step.process = p;
        if (decisions[static_cast<std::size_t>(p) - 1] != 0)
            step.decision = decisions[static_cast<std::size_t>(p) - 1];
        run.steps.push_back(step);
    }
    run.stop = StopReason::kQuiescent;
    return run;
}

TEST(ByzantineClassification, ByzantineDecisionsAreExcluded) {
    // Three processes decide {1, 2, 1}: k = 1 agreement is violated...
    ksa::Run run = handcrafted_run({1, 2, 1});
    EXPECT_EQ(chaos::classify_run(run, 1),
              chaos::Outcome::kAgreementViolated);
    // ...unless the dissenting process is Byzantine, in which case only
    // the honest majority is held to the spec.
    run.plan.note_byzantine(2, 1, 0);
    EXPECT_EQ(chaos::classify_run(run, 1),
              chaos::Outcome::kDecidedCorrectly);
}

TEST(ByzantineClassification, HonestViolationsStillCount) {
    // The Byzantine process cannot launder a violation between honest
    // processes: {1, 2, 3} with only p2 Byzantine still leaves {1, 3}
    // as two distinct honest decisions.
    ksa::Run run = handcrafted_run({1, 2, 3});
    run.plan.note_byzantine(2, 0, 1);
    EXPECT_EQ(chaos::classify_run(run, 1),
              chaos::Outcome::kAgreementViolated);
    EXPECT_EQ(chaos::classify_run(run, 2),
              chaos::Outcome::kDecidedCorrectly);
}

TEST(ByzantineClassification, UndecidedByzantineIsNotATimeout) {
    // An undecided honest process trips admissibility (checked before
    // the termination test, so the outcome is kInadmissible, not
    // kTimedOut); marking it Byzantine exempts it from both.
    ksa::Run run = handcrafted_run({1, 0, 1});
    EXPECT_EQ(chaos::classify_run(run, 1), chaos::Outcome::kInadmissible);
    run.plan.note_byzantine(2, 1, 0);
    EXPECT_EQ(chaos::classify_run(run, 1),
              chaos::Outcome::kDecidedCorrectly);
}

TEST(ByzantineAdmissibility, ByzantineProcessesAreExempt) {
    ksa::Run run = handcrafted_run({1, 0, 1});
    const AdmissibilityReport before = check_admissibility(run);
    EXPECT_FALSE(before.admissible) << "undecided correct p2 must be flagged";
    run.plan.note_byzantine(2, 1, 0);
    const AdmissibilityReport after = check_admissibility(run);
    EXPECT_TRUE(after.admissible)
        << (after.violations.empty() ? "" : after.violations.front());
}

// ----------------------------------------------------- the shrinker

TEST(ByzantineShrink, EquivocationTracesShrinkBelowQuarter) {
    // Mirror of the bench's Byzantine shrink row: a partition-forced
    // agreement violation with equivocation faults on top must shrink
    // to at most 25% of its original fault events, and the shrunk run
    // must still replay byte-identically.
    const auto algorithm = algo::make_flp_kset(4, 2);
    const chaos::RunPredicate violates = chaos::violates_k_agreement(1);
    bool exercised = false;
    for (std::uint64_t seed = 11; seed <= 60 && !exercised; ++seed) {
        PartitionScheduler partition({{1, 2}, {3, 4}});
        chaos::ChaosProfile profile = chaos::guarded_profile(seed);
        profile.duplicate_per_mille = 400;
        profile.max_duplicates = 32;
        profile.equivocate_per_mille = 80;
        profile.max_equivocations = 3;
        profile.max_byzantine = 2;
        chaos::FaultInjector injector(partition, profile);
        const ksa::Run run =
            execute_run(*algorithm, 4, distinct_inputs(4), FailurePlan{},
                        injector, nullptr, {.max_steps = 3000});
        if (run.stop == StopReason::kStepLimit || !violates(run)) continue;
        if (injector.stats().equivocations == 0) continue;
        exercised = true;

        const chaos::ShrinkResult shrunk = chaos::shrink_chaos_trace(
            *algorithm, chaos::extract_chaos_trace(run), violates);
        EXPECT_LE(shrunk.shrunk_faults * 4, shrunk.original_faults)
            << "seed=" << seed;
        EXPECT_TRUE(violates(shrunk.run)) << "seed=" << seed;
        expect_replay_byte_identical(*algorithm, shrunk.run,
                                     "shrunk seed=" + std::to_string(seed));
    }
    EXPECT_TRUE(exercised)
        << "no equivocation-seasoned violation found in the seed range";
}

// --------------------------------------- trials, budgets and the sweep

TEST(ByzantineTrial, TinyStepBudgetIsInconclusiveNotTimedOut) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const chaos::TrialResult trial = chaos::byzantine_trial(
            5, 1, 1, chaos::byzantine_profile(seed, -1), seed,
            {.max_steps = 20});
        EXPECT_EQ(trial.outcome, chaos::Outcome::kInconclusive)
            << "seed=" << seed;
        // The crash-model trial keeps its historical kTimedOut label.
        const chaos::TrialResult crash = chaos::chaos_trial(
            5, 1, 1, chaos::guarded_profile(seed), seed, {.max_steps = 20});
        EXPECT_EQ(crash.outcome, chaos::Outcome::kTimedOut)
            << "seed=" << seed;
    }
}

TEST(ByzantineSweep, SmallGridIsCompleteAndLabeledByBIR) {
    chaos::SweepConfig config;
    config.model = chaos::SweepConfig::FaultModel::kByzantine;
    config.min_n = 2;
    config.max_n = 4;
    config.seeds_per_cell = 4;
    config.profile = chaos::byzantine_profile(1, -1);
    config.limits.max_steps = 6000;
    const chaos::SweepReport report = chaos::resilience_sweep(config);

    EXPECT_TRUE(report.complete());
    for (const chaos::CellResult& cell : report.cells) {
        EXPECT_EQ(cell.solvable,
                  core::byzantine_kset_necessary(cell.n, cell.f, cell.k));
        EXPECT_EQ(cell.trials, config.seeds_per_cell);
        // f = 0 cells see no Byzantine faults and must decide cleanly.
        if (cell.f == 0) EXPECT_EQ(cell.decided, cell.trials);
    }

    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"model\": \"byzantine\""), std::string::npos);
    EXPECT_NE(json.find("\"inconclusive\""), std::string::npos);
    EXPECT_NE(json.find("\"complete\""), std::string::npos);
    const std::string md = report.to_markdown();
    EXPECT_NE(md.find("Bouzid-Imbs-Raynal"), std::string::npos);
    EXPECT_NE(md.find("| n | k | f |"), std::string::npos);
}

TEST(ByzantineSweep, SweepIsDeterministicAcrossThreadCounts) {
    chaos::SweepConfig config;
    config.model = chaos::SweepConfig::FaultModel::kByzantine;
    config.max_n = 3;
    config.seeds_per_cell = 4;
    config.profile = chaos::byzantine_profile(3, -1);
    config.limits.max_steps = 6000;
    const std::string sequential = chaos::resilience_sweep(config).to_json();
    config.threads = 4;
    EXPECT_EQ(chaos::resilience_sweep(config).to_json(), sequential);
}

TEST(ByzantineSweep, RetryPassIsAccountedAndOptional) {
    // A starvation-level step budget forces inconclusive trials; the
    // retry pass must be visible in the counters and switch-offable.
    chaos::SweepConfig config;
    config.model = chaos::SweepConfig::FaultModel::kByzantine;
    config.min_n = 4;
    config.max_n = 4;
    config.seeds_per_cell = 4;
    config.profile = chaos::byzantine_profile(1, -1);
    config.limits.max_steps = 20;
    const chaos::SweepReport with_retry = chaos::resilience_sweep(config);
    EXPECT_TRUE(with_retry.complete());
    int retries = 0, inconclusive = 0;
    for (const chaos::CellResult& cell : with_retry.cells) {
        retries += cell.retries;
        inconclusive += cell.inconclusive;
    }
    EXPECT_GT(retries, 0);
    EXPECT_GT(inconclusive, 0) << "20 steps cannot finish any n=4 trial";

    config.retry_inconclusive = false;
    const chaos::SweepReport without = chaos::resilience_sweep(config);
    EXPECT_TRUE(without.complete());
    for (const chaos::CellResult& cell : without.cells)
        EXPECT_EQ(cell.retries, 0);
}

}  // namespace
}  // namespace ksa
