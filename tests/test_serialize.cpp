// Tests for run serialization: round-tripping, schedule extraction and
// replay fidelity.

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "algo/paxos_consensus.hpp"
#include "fd/sources.hpp"
#include "sim/schedulers.hpp"
#include "sim/serialize.hpp"
#include "sim/system.hpp"

namespace ksa {
namespace {

bool runs_equal(const Run& a, const Run& b) {
    if (a.n != b.n || a.algorithm != b.algorithm || a.inputs != b.inputs ||
        a.stop != b.stop || !(a.plan == b.plan) ||
        a.steps.size() != b.steps.size() ||
        a.fd_history.size() != b.fd_history.size())
        return false;
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
        const StepRecord &x = a.steps[i], &y = b.steps[i];
        if (x.time != y.time || x.process != y.process ||
            x.decision != y.decision || x.digest_after != y.digest_after ||
            x.final_crash_step != y.final_crash_step || x.fd != y.fd)
            return false;
        auto msgs_equal = [](const std::vector<Message>& u,
                             const std::vector<Message>& v) {
            if (u.size() != v.size()) return false;
            for (std::size_t j = 0; j < u.size(); ++j)
                if (u[j].id != v[j].id || !content_equal(u[j], v[j]) ||
                    u[j].sent_at != v[j].sent_at)
                    return false;
            return true;
        };
        if (!msgs_equal(x.delivered, y.delivered) ||
            !msgs_equal(x.sent, y.sent) || !msgs_equal(x.omitted, y.omitted))
            return false;
    }
    for (std::size_t i = 0; i < a.fd_history.size(); ++i) {
        const FdEvent &x = a.fd_history[i], &y = b.fd_history[i];
        if (x.time != y.time || x.process != y.process || !(x.sample == y.sample))
            return false;
    }
    return true;
}

TEST(Serialize, RoundTripsSimpleRun) {
    algo::FloodingKSet algorithm(2);
    FailurePlan plan;
    plan.set_crash(3, CrashSpec{1, {1}});
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), plan, rr);
    ksa::Run back = run_from_string(run_to_string(run));
    EXPECT_TRUE(runs_equal(run, back));
}

TEST(Serialize, RoundTripsFdRun) {
    algo::PaxosConsensus algorithm;
    FailurePlan plan;
    auto oracle = fd::make_benign_sigma_omega(3, plan, {2});
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, 3, distinct_inputs(3), plan, rr,
                          oracle.get());
    ksa::Run back = run_from_string(run_to_string(run));
    EXPECT_TRUE(runs_equal(run, back));
    EXPECT_FALSE(back.fd_history.empty());
}

TEST(Serialize, RejectsGarbage) {
    EXPECT_THROW(run_from_string("not a run"), UsageError);
    EXPECT_THROW(run_from_string("KSARUN 1\nn 2\n"), UsageError);  // no end
    EXPECT_THROW(run_from_string("KSARUN 1\nwat 1\nend\n"), UsageError);
}

TEST(Serialize, ScheduleReplayReproducesRunExactly) {
    algo::FloodingKSet algorithm(3);
    RandomScheduler random(2024);
    ksa::Run original = execute_run(algorithm, 4, distinct_inputs(4), {}, random);

    ScriptedScheduler replay(schedule_of(original));
    ksa::Run replayed = execute_run(algorithm, 4, distinct_inputs(4), {}, replay);
    // The scripted scheduler stops exactly at the end of the schedule;
    // stop reasons may differ, everything else must match.
    replayed.stop = original.stop;
    EXPECT_TRUE(runs_equal(original, replayed));
}

TEST(Serialize, QueriesWorkOnDeserializedRuns) {
    algo::FloodingKSet algorithm(2);
    PartitionScheduler sched({{1, 2}, {3, 4}});
    ksa::Run run = execute_run(algorithm, 4, distinct_inputs(4), {}, sched);
    ksa::Run back = run_from_string(run_to_string(run));
    EXPECT_EQ(back.distinct_decisions(), run.distinct_decisions());
    EXPECT_EQ(back.decision_time_of(3), run.decision_time_of(3));
    EXPECT_TRUE(indistinguishable_for_all(run, back, {1, 2, 3, 4}));
}

}  // namespace
}  // namespace ksa
