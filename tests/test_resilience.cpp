// Tests for the resilience harness and the counterexample shrinker.
//
// The harness's headline claim is Theorem 8, empirically: under
// guard-mode chaos, every (n, k, f) cell on the solvable side of
// k*n > (k+1)*f decides correctly on every seeded trial.  The shrinker's
// headline claim is the acceptance bar of the chaos layer: a messy
// planted agreement violation reduces to <= 25% of its fault events and
// both ends of the shrink replay bit-identically.

#include <gtest/gtest.h>

#include <string>

#include "algo/initial_clique.hpp"
#include "chaos/chaos_trace.hpp"
#include "chaos/fault_injector.hpp"
#include "chaos/profile.hpp"
#include "chaos/resilience.hpp"
#include "chaos/shrink.hpp"
#include "check/determinism.hpp"
#include "core/bounds.hpp"
#include "core/kset_spec.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace ksa {
namespace {

// -------------------------------------------------------- classification

TEST(ClassifyRun, AgreesWithKsetSpec) {
    // A benign solvable-side run is kDecidedCorrectly...
    const auto algorithm = algo::make_flp_kset(4, 1);
    FailurePlan plan;
    plan.set_initially_dead(3);
    RoundRobinScheduler rr;
    const ksa::Run good = execute_run(*algorithm, 4, distinct_inputs(4), plan, rr);
    EXPECT_EQ(chaos::classify_run(good, 1),
              chaos::Outcome::kDecidedCorrectly);

    // ...and the impossible-side partition run violates agreement, which
    // the classifier and the spec checker must agree on.
    const auto weak = algo::make_flp_kset(4, 2);  // L = 2; 1*4 > 2*2 fails
    PartitionScheduler partition({{1, 2}, {3, 4}});
    const ksa::Run bad = execute_run(*weak, 4, distinct_inputs(4), FailurePlan{},
                                partition);
    EXPECT_EQ(chaos::classify_run(bad, 1),
              chaos::Outcome::kAgreementViolated);
    EXPECT_FALSE(core::check_kset_agreement(bad, 1).k_agreement);
}

TEST(ClassifyRun, OutcomeNamesRender) {
    EXPECT_EQ(chaos::to_string(chaos::Outcome::kDecidedCorrectly),
              "decided-correctly");
    EXPECT_EQ(chaos::to_string(chaos::Outcome::kAgreementViolated),
              "agreement-violated");
    EXPECT_EQ(chaos::to_string(chaos::Outcome::kInadmissible),
              "inadmissible");
}

// ------------------------------------------------------ the boundary sweep

TEST(ResilienceSweep, Theorem8BoundaryHoldsUnderChaos) {
    chaos::SweepConfig config;
    config.min_n = 2;
    config.max_n = 6;
    config.seeds_per_cell = 20;
    config.base_seed = 1;
    config.profile = chaos::guarded_profile(1);

    const chaos::SweepReport report = chaos::resilience_sweep(config);
    ASSERT_FALSE(report.cells.empty());
    EXPECT_TRUE(report.boundary_clean());

    int solvable_cells = 0, impossible_violations = 0;
    for (const chaos::CellResult& cell : report.cells) {
        EXPECT_EQ(cell.solvable,
                  core::theorem8_solvable(cell.n, cell.f, cell.k))
            << "n=" << cell.n << " k=" << cell.k << " f=" << cell.f;
        EXPECT_EQ(cell.trials, config.seeds_per_cell);
        if (cell.solvable) {
            ++solvable_cells;
            EXPECT_TRUE(cell.clean())
                << "n=" << cell.n << " k=" << cell.k << " f=" << cell.f;
            EXPECT_EQ(cell.decided, cell.trials);
        } else {
            impossible_violations += cell.agreement_violations;
        }
    }
    EXPECT_GT(solvable_cells, 0);
    // The impossible side is not *guaranteed* to fail per trial, but
    // over a whole grid of chaos trials some cell must have witnessed an
    // agreement violation (L = n - f is simply too low there).
    EXPECT_GT(impossible_violations, 0);
}

TEST(ResilienceSweep, ReportsRender) {
    chaos::SweepConfig config;
    config.min_n = 2;
    config.max_n = 3;
    config.seeds_per_cell = 4;
    config.profile = chaos::guarded_profile(1);
    const chaos::SweepReport report = chaos::resilience_sweep(config);

    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"cells\""), std::string::npos);
    EXPECT_NE(json.find("\"solvable\""), std::string::npos);
    EXPECT_NE(json.find("\"boundary_clean\""), std::string::npos);

    const std::string md = report.to_markdown();
    EXPECT_NE(md.find("| n | k | f |"), std::string::npos);
    EXPECT_NE(md.find("Theorem 8"), std::string::npos);
}

// ------------------------------------------------------------ the shrinker

/// A deliberately messy agreement violation: impossible side of
/// Theorem 8 (n=4, f=2, k=1), partition adversary, guard-mode chaos with
/// a high duplication rate so the run carries plenty of irrelevant fault
/// events for the shrinker to discard.
Run planted_violation(std::uint64_t seed) {
    const auto algorithm = algo::make_flp_kset(4, 2);  // L = 2
    PartitionScheduler partition({{1, 2}, {3, 4}});
    chaos::ChaosProfile profile = chaos::guarded_profile(seed);
    profile.duplicate_per_mille = 400;
    profile.max_duplicates = 32;
    chaos::FaultInjector injector(partition, profile);
    return execute_run(*algorithm, 4, distinct_inputs(4), FailurePlan{},
                       injector);
}

TEST(Shrink, ReducesPlantedViolationToQuarterOrLess) {
    // Find a seed whose planted run is messy enough (>= 8 fault events)
    // to make the 25% acceptance bar meaningful.
    ksa::Run original;
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 32 && !found; ++seed) {
        original = planted_violation(seed);
        found = original.num_fault_events() >= 8 &&
                !core::check_kset_agreement(original, 1).k_agreement;
    }
    ASSERT_TRUE(found) << "no messy planted violation in 32 seeds";

    const auto algorithm = algo::make_flp_kset(4, 2);
    const chaos::ChaosTrace trace = chaos::extract_chaos_trace(original);
    const chaos::ShrinkResult shrunk = chaos::shrink_chaos_trace(
        *algorithm, trace, chaos::violates_k_agreement(1));

    EXPECT_EQ(shrunk.original_faults, original.num_fault_events());
    EXPECT_LE(shrunk.shrunk_faults * 4, shrunk.original_faults)
        << shrunk.to_string();
    EXPECT_LE(shrunk.shrunk_steps, shrunk.original_steps);
    EXPECT_GT(shrunk.candidates_tried, 0);

    // The shrunk run still violates...
    EXPECT_TRUE(chaos::violates_k_agreement(1)(shrunk.run))
        << run_summary(shrunk.run);
    // ...and both ends of the shrink replay bit-identically.
    check::DeterminismAuditor auditor(*algorithm, {});
    EXPECT_TRUE(auditor.audit_replay(original).deterministic);
    EXPECT_TRUE(auditor.audit_replay(shrunk.run).deterministic)
        << auditor.audit_replay(shrunk.run).divergence;

    // Round trip through the trace layer is exact.
    const ksa::Run replayed = chaos::replay_chaos_trace(*algorithm, shrunk.trace);
    EXPECT_EQ(run_summary(replayed), run_summary(shrunk.run));
}

TEST(Shrink, RefusesNonViolatingRun) {
    const auto algorithm = algo::make_flp_kset(4, 1);
    FailurePlan plan;
    plan.set_initially_dead(4);
    RoundRobinScheduler rr;
    const ksa::Run clean = execute_run(*algorithm, 4, distinct_inputs(4), plan,
                                  rr);
    EXPECT_THROW(chaos::shrink_chaos_trace(*algorithm,
                                           chaos::extract_chaos_trace(clean),
                                           chaos::violates_k_agreement(1)),
                 UsageError);
}

TEST(Shrink, ValidityPredicateMatchesSpec) {
    const auto algorithm = algo::make_flp_kset(4, 1);
    FailurePlan plan;
    plan.set_initially_dead(1);
    RoundRobinScheduler rr;
    const ksa::Run run = execute_run(*algorithm, 4, distinct_inputs(4), plan, rr);
    EXPECT_FALSE(chaos::violates_validity()(run));
    EXPECT_FALSE(chaos::violates_k_agreement(1)(run));
}

}  // namespace
}  // namespace ksa
