// Tests for the ksa-verify contract layer itself: each policy
// (throw/abort/count), the violation log, the PolicyGuard scoping, and
// the contract wiring in FailurePlan / PartitionScheduler / System.

#include <gtest/gtest.h>

#include "check/contract.hpp"
#include "sim/failure_plan.hpp"
#include "sim/schedulers.hpp"
#include "sim/types.hpp"

namespace ksa {
namespace {

using check::ContractKind;
using check::Policy;
using check::PolicyGuard;

// Helper functions exercising each macro away from any real component.
void require_positive(int x) { KSA_REQUIRE(x > 0, "x must be positive"); }
void ensure_even(int x) { KSA_ENSURE(x % 2 == 0, "result must be even"); }
void invariant_small(int x) { KSA_INVARIANT(x < 100, "x out of range"); }

// ------------------------------------------------------------ throw policy

TEST(ContractThrowPolicy, RequireRaisesUsageError) {
    PolicyGuard guard(Policy::kThrow);
    EXPECT_NO_THROW(require_positive(1));
    EXPECT_THROW(require_positive(0), UsageError);
    // The exception message is the human message, exactly like the
    // historical require() in sim/types.hpp.
    try {
        require_positive(-5);
        FAIL() << "expected UsageError";
    } catch (const UsageError& e) {
        EXPECT_STREQ(e.what(), "x must be positive");
    }
}

TEST(ContractThrowPolicy, EnsureAndInvariantRaiseSimulationBug) {
    PolicyGuard guard(Policy::kThrow);
    EXPECT_NO_THROW(ensure_even(4));
    EXPECT_THROW(ensure_even(3), SimulationBug);
    EXPECT_NO_THROW(invariant_small(5));
    EXPECT_THROW(invariant_small(1000), SimulationBug);
    // SimulationBug messages carry the failure site for debugging.
    try {
        ensure_even(7);
        FAIL() << "expected SimulationBug";
    } catch (const SimulationBug& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ensure"), std::string::npos) << what;
        EXPECT_NE(what.find("x % 2 == 0"), std::string::npos) << what;
        EXPECT_NE(what.find("result must be even"), std::string::npos) << what;
    }
}

TEST(ContractThrowPolicy, CountsEvenWhenThrowing) {
    PolicyGuard guard(Policy::kThrow);
    EXPECT_EQ(check::violation_count(), 0u);
    EXPECT_THROW(require_positive(0), UsageError);
    EXPECT_THROW(ensure_even(3), SimulationBug);
    EXPECT_EQ(check::violation_count(), 2u);
}

// ------------------------------------------------------------ count policy

TEST(ContractCountPolicy, RecordsAndContinues) {
    PolicyGuard guard(Policy::kCount);
    EXPECT_EQ(check::violation_count(), 0u);
    EXPECT_FALSE(check::last_violation().has_value());

    require_positive(1);  // passes: not recorded
    EXPECT_EQ(check::violation_count(), 0u);

    require_positive(0);  // fails: recorded, no throw
    ensure_even(3);
    invariant_small(200);
    EXPECT_EQ(check::violation_count(), 3u);

    const auto last = check::last_violation();
    ASSERT_TRUE(last.has_value());
    EXPECT_EQ(last->kind, ContractKind::kInvariant);
    EXPECT_EQ(last->expression, "x < 100");
    EXPECT_EQ(last->message, "x out of range");
    EXPECT_NE(last->file.find("test_check_contract.cpp"), std::string::npos);
    EXPECT_GT(last->line, 0);
    EXPECT_NE(last->to_string().find("invariant(x < 100)"),
              std::string::npos);

    check::reset_violations();
    EXPECT_EQ(check::violation_count(), 0u);
    EXPECT_FALSE(check::last_violation().has_value());
}

TEST(ContractCountPolicy, SurveysComponentViolationsWithoutAborting) {
    PolicyGuard guard(Policy::kCount);
    // Overlapping partition blocks: under kCount the constructor records
    // the contract breach instead of throwing.
    PartitionScheduler scheduler({{1, 2}, {2, 3}});
    EXPECT_GE(check::violation_count(), 1u);
    const auto last = check::last_violation();
    ASSERT_TRUE(last.has_value());
    EXPECT_EQ(last->message, "PartitionScheduler: blocks must be disjoint");
}

TEST(ContractCountPolicy, FailurePlanSpecStaysMemorySafe) {
    PolicyGuard guard(Policy::kCount);
    FailurePlan plan;
    // spec() on a correct process is a contract breach; under kCount it
    // must still return a harmless value instead of dereferencing end().
    const CrashSpec& spec = plan.spec(7);
    EXPECT_EQ(spec.after_own_steps, 0);
    EXPECT_TRUE(spec.omit_to.empty());
    EXPECT_EQ(check::violation_count(), 1u);
}

// ------------------------------------------------------------ abort policy

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, AbortPolicyAborts) {
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            check::set_policy(Policy::kAbort);
            KSA_INVARIANT(1 == 2, "impossible arithmetic");
        },
        "ksa contract violation.*invariant.*impossible arithmetic");
}

// -------------------------------------------------------------- the guard

TEST(ContractPolicyGuard, RestoresPreviousPolicyAndScopes) {
    ASSERT_EQ(check::policy(), Policy::kThrow);  // process default
    {
        PolicyGuard outer(Policy::kCount);
        EXPECT_EQ(check::policy(), Policy::kCount);
        {
            PolicyGuard inner(Policy::kThrow);
            EXPECT_EQ(check::policy(), Policy::kThrow);
        }
        EXPECT_EQ(check::policy(), Policy::kCount);
    }
    EXPECT_EQ(check::policy(), Policy::kThrow);
}

// ------------------------------------------- wiring into the components

TEST(ContractWiring, FailurePlanRejectsMalformedSpecs) {
    FailurePlan plan;
    EXPECT_THROW(plan.set_crash(0, CrashSpec{1, {}}), UsageError);
    EXPECT_THROW(plan.set_crash(2, CrashSpec{-1, {}}), UsageError);
    // Omissions belong to the *final step*; an initially dead process
    // has none.
    EXPECT_THROW(plan.set_crash(2, CrashSpec{0, {1}}), UsageError);
    EXPECT_NO_THROW(plan.set_crash(2, CrashSpec{3, {1}}));
}

TEST(ContractWiring, SchedulerBudgetsMustBePositive) {
    EXPECT_THROW(PartitionScheduler({{1}}, 0), UsageError);
    StagedScheduler::Stage stage;
    stage.active = {1};
    stage.budget = -3;
    EXPECT_THROW(StagedScheduler({stage}), UsageError);
}

}  // namespace
}  // namespace ksa
