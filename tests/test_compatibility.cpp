// Tests for Definition 3: compatibility of run sets (R' 4_D R).

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace ksa {
namespace {

ksa::Run isolated_run(const Algorithm& algorithm, int n,
                      std::vector<ProcessId> block) {
    PartitionScheduler sched({std::move(block)});
    return execute_run(algorithm, n, distinct_inputs(n), {}, sched);
}

ksa::Run dead_outsiders_run(const Algorithm& algorithm, int n,
                            const std::vector<ProcessId>& block) {
    FailurePlan plan;
    for (ProcessId p = 1; p <= n; ++p)
        if (std::find(block.begin(), block.end(), p) == block.end())
            plan.set_initially_dead(p);
    RoundRobinScheduler rr;
    return execute_run(algorithm, n, distinct_inputs(n), plan, rr);
}

TEST(Compatibility, IsolationRunsAreCompatibleWithDeadOutsiderRuns) {
    // The condition (D)-style correspondence as a set statement: runs
    // where {1,2} is isolated are compatible (for {1,2}) with runs where
    // everyone else is dead.
    algo::FloodingKSet algorithm(2);
    std::vector<ksa::Run> r_prime{isolated_run(algorithm, 4, {1, 2})};
    std::vector<ksa::Run> r{dead_outsiders_run(algorithm, 4, {1, 2}),
                            dead_outsiders_run(algorithm, 4, {3, 4})};
    auto choice = compatible_for(r_prime, r, {1, 2});
    ASSERT_TRUE(choice.has_value());
    EXPECT_EQ(choice->at(0), 0u);  // matched the {1,2}-alive run
}

TEST(Compatibility, FailsWithWitnessWhenNoCounterpartExists) {
    algo::FloodingKSet algorithm(2);
    // A fair run (p1 hears p3/p4 early) has no counterpart among runs
    // where p3/p4 are dead.
    RoundRobinScheduler rr;
    std::vector<ksa::Run> r_prime{
        execute_run(algorithm, 4, distinct_inputs(4), {}, rr)};
    std::vector<ksa::Run> r{dead_outsiders_run(algorithm, 4, {1, 2})};
    std::size_t witness = 99;
    auto choice = compatible_for(r_prime, r, {1, 2}, &witness);
    EXPECT_FALSE(choice.has_value());
    EXPECT_EQ(witness, 0u);
}

TEST(Compatibility, EmptyRPrimeIsVacuouslyCompatible) {
    auto choice = compatible_for({}, {}, {1});
    ASSERT_TRUE(choice.has_value());
    EXPECT_TRUE(choice->empty());
}

TEST(Compatibility, ReflexiveOnIdenticalSets) {
    algo::FloodingKSet algorithm(2);
    std::vector<ksa::Run> runs{isolated_run(algorithm, 3, {1, 2})};
    auto choice = compatible_for(runs, runs, {1, 2, 3});
    ASSERT_TRUE(choice.has_value());
}

}  // namespace
}  // namespace ksa
