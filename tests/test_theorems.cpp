// Integration tests: the per-theorem drivers end to end.

#include <gtest/gtest.h>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "algo/quorum_leader_kset.hpp"
#include "core/bounds.hpp"
#include "core/theorem10.hpp"
#include "core/theorem2.hpp"
#include "core/theorem8.hpp"
#include "core/corollary13.hpp"
#include "sim/trace.hpp"

namespace ksa {
namespace {

TEST(Theorem2, FloodingCandidateIsDefeated) {
    // n=5, f=3, k=2: k*(n-f) = 4 <= n-1 = 4, so the bound applies.
    algo::FloodingKSet candidate(2);  // threshold n-f = 2
    core::Theorem2Result result = core::run_theorem2(candidate, 5, 3, 2);
    EXPECT_TRUE(result.bound_applies);
    EXPECT_TRUE(result.condition_c_analytic);
    EXPECT_TRUE(result.certificate.condition_a) << result.summary();
    EXPECT_TRUE(result.certificate.condition_b) << result.summary();
    EXPECT_TRUE(result.certificate.condition_d) << result.summary();
    EXPECT_TRUE(result.certificate.consensus_split) << result.summary();
    EXPECT_TRUE(result.certificate.violation)
        << result.summary() << "\n"
        << trace_string(result.certificate.violating);
    EXPECT_GT(result.certificate.violating_values.size(), 2u);
}

TEST(Theorem2, ConsensusCaseAgainstFlooding) {
    // k=1 degenerates to the FLP-style impossibility; the window split
    // alone breaks flooding consensus.
    algo::FloodingKSet candidate(3);  // n=5, f=2 -> threshold 3
    core::Theorem2Result result = core::run_theorem2(candidate, 5, 2, 1);
    EXPECT_TRUE(result.certificate.violation) << result.summary();
}

TEST(Theorem8, PossibilityBelowBorder) {
    // n=6, f=2, k=1: 1*6 > 2*2 -- consensus with two initial crashes.
    EXPECT_TRUE(core::theorem8_solvable(6, 2, 1));
    core::Theorem8Trial trial = core::theorem8_trial(6, 2, 1, {2, 5}, 42);
    EXPECT_TRUE(trial.check.ok()) << run_summary(trial.run);
    EXPECT_LE(trial.distinct_decisions, 1);
}

TEST(Theorem8, BorderViolation) {
    // n=6, k=2 -> f=4 with k*n = (k+1)*f: the k+1-way partition pasting
    // produces an admissible crash-free run with 3 distinct decisions.
    auto algorithm = algo::make_flp_kset(6, 4);
    core::Theorem8Border border = core::theorem8_border(*algorithm, 6, 2);
    EXPECT_TRUE(border.violation) << border.summary();
    EXPECT_EQ(border.distinct_decisions, 3);
    EXPECT_TRUE(border.paste.all_indistinguishable);
}

TEST(Theorem10, QuorumLeaderCandidateIsDefeated) {
    algo::QuorumLeaderKSet candidate;
    core::Theorem10Result result = core::run_theorem10(candidate, 5, 2);
    EXPECT_TRUE(result.certificate.condition_a) << result.summary();
    EXPECT_TRUE(result.certificate.condition_b) << result.summary();
    EXPECT_TRUE(result.certificate.condition_d) << result.summary();
    EXPECT_TRUE(result.certificate.consensus_split) << result.summary();
    EXPECT_TRUE(result.certificate.violation)
        << result.summary() << "\n"
        << trace_string(result.certificate.violating);
    // Lemma 9, executable: the history is a genuine (Sigma_k, Omega_k)
    // history.
    EXPECT_TRUE(result.partition_validation.ok) << result.summary();
    EXPECT_TRUE(result.sigma_omega_validation.ok) << result.summary();
}

TEST(Corollary13, ConsensusWithSigmaOmega) {
    core::Corollary13Trial trial =
        core::corollary13_consensus_trial(5, {3}, 7);
    EXPECT_TRUE(trial.check.ok()) << run_summary(trial.run);
    EXPECT_EQ(trial.distinct_decisions, 1);
}

TEST(Corollary13, SetAgreementWithSigmaNMinus1) {
    core::Corollary13Trial trial = core::corollary13_set_trial(5, {}, 11);
    EXPECT_TRUE(trial.check.ok()) << run_summary(trial.run);
    EXPECT_LE(trial.distinct_decisions, 4);
}

TEST(Corollary13, TightnessExactlyNMinus1) {
    core::Corollary13Trial trial = core::corollary13_tightness_trial(5, 13);
    EXPECT_TRUE(trial.check.ok()) << run_summary(trial.run);
    EXPECT_EQ(trial.distinct_decisions, 4);
}

}  // namespace
}  // namespace ksa
