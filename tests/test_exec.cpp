// The execution layer's determinism contract, enforced.
//
// The work-stealing core (task_scheduler.hpp / steal_deque.hpp)
// promises that run_chunked visits every index exactly once, that
// parallel maps produce results in input order, byte-identical for
// every thread count and grain, and that exceptions are re-thrown
// deterministically (lowest index wins).  This suite holds the deque
// and the scheduler to those promises directly -- including a region
// constructed so that at least one steal MUST happen -- and then holds
// the production sweeps built on them (chaos::resilience_sweep,
// core::border_map) to 1-thread-vs-N-thread byte-identity of their
// rendered reports.
//
// Oversubscribed schedulers (TaskScheduler(n, true)) are used wherever
// the test needs real concurrency: the default constructor clamps to
// the hardware, which on a 1-core CI box would silently reduce every
// "parallel" test to the inline path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chaos/resilience.hpp"
#include "core/border_map.hpp"
#include "exec/parallel_map.hpp"
#include "exec/steal_deque.hpp"
#include "exec/task_scheduler.hpp"
#include "exec/thread_pool.hpp"

namespace ksa::exec {
namespace {

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
    EXPECT_GE(hardware_threads(), 1);
}

// ---------------------------------------------------------------------
// StealDeque: the Chase-Lev deque underneath the scheduler.

TEST(StealDeque, OwnerPopsLifoThievesStealFifo) {
    StealDeque d;
    d.reset(8);
    EXPECT_TRUE(d.looks_empty());
    for (std::size_t v = 0; v < 4; ++v) d.push_bottom(v);
    std::size_t out = 99;
    ASSERT_TRUE(d.steal_top(out));
    EXPECT_EQ(out, 0u);  // thieves take the oldest entry
    ASSERT_TRUE(d.pop_bottom(out));
    EXPECT_EQ(out, 3u);  // the owner takes the newest
    ASSERT_TRUE(d.pop_bottom(out));
    EXPECT_EQ(out, 2u);
    ASSERT_TRUE(d.steal_top(out));
    EXPECT_EQ(out, 1u);
    EXPECT_FALSE(d.pop_bottom(out));
    EXPECT_FALSE(d.steal_top(out));
    EXPECT_TRUE(d.looks_empty());
}

TEST(StealDeque, ResetClearsAndGrowsCapacity) {
    StealDeque d;
    d.reset(2);
    d.push_bottom(7);
    d.push_bottom(9);
    std::size_t out = 0;
    ASSERT_TRUE(d.pop_bottom(out));
    EXPECT_EQ(out, 9u);
    d.reset(16);  // grows; the leftover entry 7 must be gone
    EXPECT_TRUE(d.looks_empty());
    EXPECT_FALSE(d.steal_top(out));
    for (std::size_t v = 0; v < 16; ++v) d.push_bottom(v);
    for (std::size_t v = 16; v-- > 0;) {
        ASSERT_TRUE(d.pop_bottom(out));
        EXPECT_EQ(out, v);
    }
}

TEST(StealDeque, ConcurrentStealsDeliverEveryItemExactlyOnce) {
    // One owner popping the bottom, three thieves racing on the top of
    // the SAME deque: every pushed value must come out exactly once.
    // Even on a single core the OS preempts across the CAS, and under
    // TSan this is the test that vets the memory orders.
    constexpr std::size_t kItems = 2048;
    for (int rep = 0; rep < 5; ++rep) {
        StealDeque d;
        d.reset(kItems);
        for (std::size_t v = 0; v < kItems; ++v) d.push_bottom(v);
        std::vector<std::atomic<int>> seen(kItems);
        std::atomic<bool> owner_done{false};
        auto thief = [&] {
            std::size_t out = 0;
            while (!owner_done.load(std::memory_order_acquire))
                if (d.steal_top(out)) seen[out].fetch_add(1);
            while (d.steal_top(out)) seen[out].fetch_add(1);
        };
        std::thread t1(thief), t2(thief), t3(thief);
        std::size_t out = 0;
        while (d.pop_bottom(out)) seen[out].fetch_add(1);
        owner_done.store(true, std::memory_order_release);
        t1.join();
        t2.join();
        t3.join();
        for (std::size_t v = 0; v < kItems; ++v)
            EXPECT_EQ(seen[v].load(), 1) << "value " << v << " rep " << rep;
    }
}

// ---------------------------------------------------------------------
// TaskScheduler: the work-stealing region executor.

TEST(TaskScheduler, ClampsToHardwareUnlessOversubscribed) {
    const int hw = hardware_threads();
    EXPECT_EQ(TaskScheduler(0).size(), 1);
    EXPECT_EQ(TaskScheduler(-2).size(), 1);
    EXPECT_LE(TaskScheduler(64).size(), hw);
    EXPECT_EQ(TaskScheduler(64).requested(), 64);
    EXPECT_EQ(TaskScheduler(4, /*oversubscribe=*/true).size(), 4);
}

TEST(TaskScheduler, GrainHeuristics) {
    // 8 chunks per worker, clamped to [kMinGrain, kMaxGrain].
    EXPECT_EQ(TaskScheduler::auto_grain(0, 4), TaskScheduler::kMinGrain);
    EXPECT_EQ(TaskScheduler::auto_grain(16, 4), TaskScheduler::kMinGrain);
    EXPECT_EQ(TaskScheduler::auto_grain(3200, 4), 100u);
    EXPECT_EQ(TaskScheduler::auto_grain(std::size_t{1} << 24, 1),
              TaskScheduler::kMaxGrain);
    // The auto threshold at 4 workers matches the old hardcoded
    // min_parallel_frontier = 16 (explorer.hpp).
    EXPECT_EQ(TaskScheduler::sequential_threshold(4), 16u);
    EXPECT_EQ(TaskScheduler::sequential_threshold(0),
              TaskScheduler::kMinGrain);
}

TEST(TaskScheduler, RunChunkedCoversEveryIndexExactlyOnce) {
    for (const int threads : {1, 2, 4, 7}) {
        TaskScheduler sched(threads, /*oversubscribe=*/true);
        for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                        std::size_t{3}, std::size_t{64}}) {
            std::vector<std::atomic<int>> hits(257);
            sched.run_chunked(hits.size(), grain,
                              [&](std::size_t i, int) { hits[i].fetch_add(1); });
            for (std::size_t i = 0; i < hits.size(); ++i)
                EXPECT_EQ(hits[i].load(), 1)
                        << "threads=" << threads << " grain=" << grain
                        << " i=" << i;
        }
    }
}

TEST(TaskScheduler, SkewedRegionForcesAtLeastOneSteal) {
    // A region built so that NO schedule can finish it without
    // stealing: worker 0 owns chunks {0, 1}; the owner visits its block
    // in ascending order and chunk 0 spin-waits until chunk 1 has run,
    // so chunk 1 can only ever be executed by a thief (thieves take the
    // far end of the block first, so a thief that grabs chunk 0 has
    // already run chunk 1 itself).  The caller's drain loop never
    // blocks, so it is guaranteed to come steal -- no deadlock.
    TaskScheduler sched(2, /*oversubscribe=*/true);
    ASSERT_EQ(sched.size(), 2);
    std::atomic<bool> chunk1_done{false};
    std::vector<int> hits(4, 0);
    sched.run_chunked(hits.size(), /*grain=*/1, [&](std::size_t i, int) {
        if (i == 0)
            while (!chunk1_done.load(std::memory_order_acquire))
                std::this_thread::yield();
        if (i == 1) chunk1_done.store(true, std::memory_order_release);
        hits[i] = 1;  // distinct slots: no two indices share a byte
    });
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 1, 1}));
    EXPECT_GE(sched.steal_count(), 1u);
}

TEST(TaskScheduler, SkewedWorkloadStaysByteIdentical) {
    // Grain-1 region with the cost concentrated in the first items (the
    // border_map shape): the owner of the expensive block lags and the
    // other workers strip-mine the rest of its share.  The output must
    // still equal the sequential reference exactly.
    constexpr std::size_t kItems = 192;
    auto cost = [](std::size_t i) {
        std::uint64_t acc = 0x9e3779b97f4a7c15ULL + i;
        const int spins = i < 8 ? 20000 : 20;
        for (int s = 0; s < spins; ++s) {
            acc ^= acc << 13;
            acc ^= acc >> 7;
            acc ^= acc << 17;
        }
        return acc;
    };
    std::vector<std::uint64_t> seq(kItems, 0), par(kItems, 0);
    TaskScheduler one(1);
    one.run_chunked(kItems, 1, [&](std::size_t i, int) { seq[i] = cost(i); });
    TaskScheduler four(4, /*oversubscribe=*/true);
    four.run_chunked(kItems, 1, [&](std::size_t i, int) { par[i] = cost(i); });
    EXPECT_EQ(seq, par);
}

TEST(TaskScheduler, LowestIndexExceptionWinsAtEveryGrain) {
    // Items 5 and 50 throw; the scheduler must surface item 5's
    // exception for every grain/thread combination, including grains
    // that put both throwers in the same chunk.
    for (const int threads : {1, 4}) {
        TaskScheduler sched(threads, /*oversubscribe=*/true);
        for (const std::size_t grain :
             {std::size_t{0}, std::size_t{1}, std::size_t{64}}) {
            try {
                sched.run_chunked(64, grain, [](std::size_t i, int) {
                    if (i == 5 || i == 50)
                        throw std::runtime_error(std::to_string(i));
                });
                FAIL() << "expected an exception (threads=" << threads
                       << " grain=" << grain << ")";
            } catch (const std::runtime_error& e) {
                EXPECT_STREQ(e.what(), "5")
                        << "threads=" << threads << " grain=" << grain;
            }
        }
    }
}

TEST(ParallelMap, GrainedByteIdenticalAcrossThreadCountsAndGrains) {
    auto fn = [](std::size_t i, int) { return i * 2654435761u; };
    TaskScheduler ref(1);
    const auto expected = parallel_map_grained(ref, 333, /*grain=*/0, fn);
    ASSERT_EQ(expected.size(), 333u);
    for (const int threads : {2, 4, hardware_threads()}) {
        TaskScheduler sched(threads, /*oversubscribe=*/true);
        for (const std::size_t grain :
             {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
            EXPECT_EQ(parallel_map_grained(sched, 333, grain, fn), expected)
                    << "threads=" << threads << " grain=" << grain;
        }
    }
}

TEST(ParallelMap, GrainedMinParallelKeepsSmallCountsInline) {
    TaskScheduler sched(4, /*oversubscribe=*/true);
    // Below the threshold every call must run inline on the caller
    // (worker id 0 throughout).
    const auto out = parallel_map_grained(
            sched, 8, /*grain=*/0,
            [](std::size_t i, int w) { return std::make_pair(i, w); },
            /*min_parallel=*/16);
    ASSERT_EQ(out.size(), 8u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].first, i);
        EXPECT_EQ(out[i].second, 0);
    }
}

TEST(ThreadPool, SizeClampsToAtLeastOne) {
    EXPECT_EQ(ThreadPool(0).size(), 1);
    EXPECT_EQ(ThreadPool(-3).size(), 1);
    EXPECT_EQ(ThreadPool(1).size(), 1);
    EXPECT_EQ(ThreadPool(4).size(), 4);
}

TEST(ThreadPool, RunIndexedCoversEveryIndexExactlyOnce) {
    // Each index writes only its own slot, so a full cover shows up as
    // slot[i] == i for all i regardless of scheduling.
    for (int threads : {1, 2, 4, 7}) {
        ThreadPool pool(threads);
        std::vector<std::size_t> slot(100, 0);
        pool.run_indexed(slot.size(),
                         [&](std::size_t i) { slot[i] = i + 1; });
        for (std::size_t i = 0; i < slot.size(); ++i)
            EXPECT_EQ(slot[i], i + 1) << "threads=" << threads << " i=" << i;
    }
}

TEST(ParallelMap, ResultsInInputOrderForEveryThreadCount) {
    auto square = [](std::size_t i) { return i * i; };
    const std::vector<std::size_t> reference =
            parallel_map_deterministic(1, 64, square);
    for (int threads : {2, 3, 4, 16}) {
        const std::vector<std::size_t> parallel =
                parallel_map_deterministic(threads, 64, square);
        EXPECT_EQ(parallel, reference) << "threads=" << threads;
    }
}

TEST(ParallelMap, EmptyCountProducesEmptyVector) {
    const auto out = parallel_map_deterministic(
            4, 0, [](std::size_t i) { return i; });
    EXPECT_TRUE(out.empty());
}

TEST(ParallelMap, MoreThreadsThanItems) {
    const auto out = parallel_map_deterministic(
            16, 3, [](std::size_t i) { return i + 10; });
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 10u);
    EXPECT_EQ(out[1], 11u);
    EXPECT_EQ(out[2], 12u);
}

TEST(ParallelMap, NonCopyableResultsMoveIntoSlots) {
    const auto out = parallel_map_deterministic(4, 8, [](std::size_t i) {
        return std::make_unique<std::size_t>(i);
    });
    ASSERT_EQ(out.size(), 8u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(*out[i], i);
}

TEST(ParallelMap, LowestIndexExceptionWinsDeterministically) {
    // Two items throw; the contract picks the lowest index no matter
    // which chunk finishes first.  Repeat to give the scheduler chances
    // to race.
    for (int rep = 0; rep < 20; ++rep) {
        try {
            parallel_map_deterministic(4, 16, [](std::size_t i) -> int {
                if (i == 3 || i == 11)
                    throw std::runtime_error(std::to_string(i));
                return static_cast<int>(i);
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "3");
        }
    }
}

// ---------------------------------------------------------------------
// Production sweeps: rendered reports byte-identical across threads.

TEST(ParallelSweeps, ResilienceSweepByteIdenticalAcrossThreads) {
    chaos::SweepConfig config;
    config.min_n = 2;
    config.max_n = 4;
    config.seeds_per_cell = 3;

    config.threads = 1;
    const chaos::SweepReport sequential = chaos::resilience_sweep(config);
    for (const int threads : {2, 4, hardware_threads()}) {
        config.threads = threads;
        const chaos::SweepReport parallel = chaos::resilience_sweep(config);
        EXPECT_EQ(sequential.to_json(), parallel.to_json())
                << "threads=" << threads;
        EXPECT_EQ(sequential.to_markdown(), parallel.to_markdown())
                << "threads=" << threads;
        EXPECT_EQ(sequential.total_trials(), parallel.total_trials());
        EXPECT_EQ(sequential.boundary_clean(), parallel.boundary_clean());
    }
}

TEST(ParallelSweeps, BorderMapByteIdenticalAcrossThreads) {
    const auto sequential = core::border_map(48);
    for (const int threads : {1, 2, 4, hardware_threads()}) {
        const auto parallel = core::border_map(48, threads);
        ASSERT_EQ(parallel.size(), sequential.size()) << "threads=" << threads;
        for (std::size_t i = 0; i < sequential.size(); ++i) {
            EXPECT_EQ(parallel[i].f, sequential[i].f) << "row " << i;
            EXPECT_EQ(parallel[i].initial, sequential[i].initial)
                    << "row " << i;
            EXPECT_EQ(parallel[i].async_, sequential[i].async_)
                    << "row " << i;
        }
    }
}

}  // namespace
}  // namespace ksa::exec
