// The execution layer's determinism contract, enforced.
//
// thread_pool.hpp promises that parallel_map_deterministic produces
// results in input order, byte-identical for every thread count, and
// that exceptions are re-thrown deterministically (lowest index wins).
// This suite holds the combinators to that promise directly, and then
// holds the two production sweeps built on them -- chaos::
// resilience_sweep and core::border_map -- to 1-thread-vs-N-thread
// byte-identity of their rendered reports.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "chaos/resilience.hpp"
#include "core/border_map.hpp"
#include "exec/parallel_map.hpp"
#include "exec/thread_pool.hpp"

namespace ksa::exec {
namespace {

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
    EXPECT_GE(hardware_threads(), 1);
}

TEST(ThreadPool, SizeClampsToAtLeastOne) {
    EXPECT_EQ(ThreadPool(0).size(), 1);
    EXPECT_EQ(ThreadPool(-3).size(), 1);
    EXPECT_EQ(ThreadPool(1).size(), 1);
    EXPECT_EQ(ThreadPool(4).size(), 4);
}

TEST(ThreadPool, RunIndexedCoversEveryIndexExactlyOnce) {
    // Each index writes only its own slot, so a full cover shows up as
    // slot[i] == i for all i regardless of scheduling.
    for (int threads : {1, 2, 4, 7}) {
        ThreadPool pool(threads);
        std::vector<std::size_t> slot(100, 0);
        pool.run_indexed(slot.size(),
                         [&](std::size_t i) { slot[i] = i + 1; });
        for (std::size_t i = 0; i < slot.size(); ++i)
            EXPECT_EQ(slot[i], i + 1) << "threads=" << threads << " i=" << i;
    }
}

TEST(ParallelMap, ResultsInInputOrderForEveryThreadCount) {
    auto square = [](std::size_t i) { return i * i; };
    const std::vector<std::size_t> reference =
            parallel_map_deterministic(1, 64, square);
    for (int threads : {2, 3, 4, 16}) {
        const std::vector<std::size_t> parallel =
                parallel_map_deterministic(threads, 64, square);
        EXPECT_EQ(parallel, reference) << "threads=" << threads;
    }
}

TEST(ParallelMap, EmptyCountProducesEmptyVector) {
    const auto out = parallel_map_deterministic(
            4, 0, [](std::size_t i) { return i; });
    EXPECT_TRUE(out.empty());
}

TEST(ParallelMap, MoreThreadsThanItems) {
    const auto out = parallel_map_deterministic(
            16, 3, [](std::size_t i) { return i + 10; });
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 10u);
    EXPECT_EQ(out[1], 11u);
    EXPECT_EQ(out[2], 12u);
}

TEST(ParallelMap, NonCopyableResultsMoveIntoSlots) {
    const auto out = parallel_map_deterministic(4, 8, [](std::size_t i) {
        return std::make_unique<std::size_t>(i);
    });
    ASSERT_EQ(out.size(), 8u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(*out[i], i);
}

TEST(ParallelMap, LowestIndexExceptionWinsDeterministically) {
    // Two items throw; the contract picks the lowest index no matter
    // which chunk finishes first.  Repeat to give the scheduler chances
    // to race.
    for (int rep = 0; rep < 20; ++rep) {
        try {
            parallel_map_deterministic(4, 16, [](std::size_t i) -> int {
                if (i == 3 || i == 11)
                    throw std::runtime_error(std::to_string(i));
                return static_cast<int>(i);
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "3");
        }
    }
}

// ---------------------------------------------------------------------
// Production sweeps: rendered reports byte-identical across threads.

TEST(ParallelSweeps, ResilienceSweepByteIdenticalAcrossThreads) {
    chaos::SweepConfig config;
    config.min_n = 2;
    config.max_n = 4;
    config.seeds_per_cell = 3;

    config.threads = 1;
    const chaos::SweepReport sequential = chaos::resilience_sweep(config);
    config.threads = 4;
    const chaos::SweepReport parallel = chaos::resilience_sweep(config);

    EXPECT_EQ(sequential.to_json(), parallel.to_json());
    EXPECT_EQ(sequential.to_markdown(), parallel.to_markdown());
    EXPECT_EQ(sequential.total_trials(), parallel.total_trials());
    EXPECT_EQ(sequential.boundary_clean(), parallel.boundary_clean());
}

TEST(ParallelSweeps, BorderMapByteIdenticalAcrossThreads) {
    const auto sequential = core::border_map(48);
    for (int threads : {1, 4}) {
        const auto parallel = core::border_map(48, threads);
        ASSERT_EQ(parallel.size(), sequential.size()) << "threads=" << threads;
        for (std::size_t i = 0; i < sequential.size(); ++i) {
            EXPECT_EQ(parallel[i].f, sequential[i].f) << "row " << i;
            EXPECT_EQ(parallel[i].initial, sequential[i].initial)
                    << "row " << i;
            EXPECT_EQ(parallel[i].async_, sequential[i].async_)
                    << "row " << i;
        }
    }
}

}  // namespace
}  // namespace ksa::exec
