// Unit and property tests for the graph library: digraphs, SCCs,
// condensation, source components (Lemmas 6 and 7), initial cliques.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/clique.hpp"
#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"

namespace ksa::graph {
namespace {

Digraph cycle(int n) {
    Digraph g(n);
    for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
    return g;
}

TEST(Digraph, EdgesAndDegrees) {
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(3, 1);
    g.add_edge(0, 1);  // idempotent
    EXPECT_EQ(g.num_edges(), 3u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_FALSE(g.has_edge(1, 0));
    EXPECT_EQ(g.in_degree(1), 2);
    EXPECT_EQ(g.out_degree(0), 2);
    EXPECT_EQ(g.min_in_degree(), 0);
    EXPECT_EQ(g.successors(0), (std::vector<int>{1, 2}));
    EXPECT_EQ(g.predecessors(1), (std::vector<int>{0, 3}));
}

TEST(Digraph, RejectsSelfLoopsAndBadVertices) {
    Digraph g(3);
    EXPECT_THROW(g.add_edge(1, 1), UsageError);
    EXPECT_THROW(g.add_edge(0, 5), UsageError);
    EXPECT_THROW(g.has_edge(-1, 0), UsageError);
}

TEST(Digraph, ReverseAndInduced) {
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    Digraph r = g.reversed();
    EXPECT_TRUE(r.has_edge(1, 0));
    EXPECT_TRUE(r.has_edge(3, 2));
    EXPECT_EQ(r.num_edges(), 3u);

    std::vector<int> labels;
    Digraph sub = g.induced({1, 2, 3}, &labels);
    EXPECT_EQ(sub.num_vertices(), 3);
    EXPECT_EQ(sub.num_edges(), 2u);  // 1->2, 2->3 survive as 0->1, 1->2
    EXPECT_TRUE(sub.has_edge(0, 1));
    EXPECT_EQ(labels, (std::vector<int>{1, 2, 3}));
}

TEST(Digraph, WeaklyConnectedComponents) {
    Digraph g(5);
    g.add_edge(0, 1);
    g.add_edge(3, 2);
    auto wccs = weakly_connected_components(g);
    ASSERT_EQ(wccs.size(), 3u);
    EXPECT_EQ(wccs[0], (std::vector<int>{0, 1}));
    EXPECT_EQ(wccs[1], (std::vector<int>{2, 3}));
    EXPECT_EQ(wccs[2], (std::vector<int>{4}));
}

TEST(Scc, CycleIsOneComponent) {
    SccDecomposition dec(cycle(5));
    EXPECT_EQ(dec.num_components(), 1);
    EXPECT_EQ(dec.members(0).size(), 5u);
    EXPECT_EQ(dec.source_components().size(), 1u);
}

TEST(Scc, ChainDecomposesIntoSingletons) {
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    SccDecomposition dec(g);
    EXPECT_EQ(dec.num_components(), 4);
    Digraph dag = dec.condensation();
    EXPECT_EQ(dag.num_edges(), 3u);
    auto sources = dec.source_components();
    ASSERT_EQ(sources.size(), 1u);
    EXPECT_EQ(sources[0], (std::vector<int>{0}));
}

TEST(Scc, TwoCyclesWithBridge) {
    // cycle {0,1,2} -> cycle {3,4}: the first is the only source.
    Digraph g(5);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.add_edge(3, 4);
    g.add_edge(4, 3);
    g.add_edge(2, 3);
    SccDecomposition dec(g);
    EXPECT_EQ(dec.num_components(), 2);
    auto sources = dec.source_components();
    ASSERT_EQ(sources.size(), 1u);
    EXPECT_EQ(sources[0], (std::vector<int>{0, 1, 2}));
}

TEST(Scc, DeepChainDoesNotOverflow) {
    const int n = 200000;
    Digraph g(n);
    for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
    SccDecomposition dec(g);  // iterative Tarjan: no stack overflow
    EXPECT_EQ(dec.num_components(), n);
}

TEST(Clique, Predicates) {
    Digraph g(4);
    for (int u : {0, 1, 2})
        for (int v : {0, 1, 2})
            if (u != v) g.add_edge(u, v);
    g.add_edge(2, 3);
    EXPECT_TRUE(is_clique(g, {0, 1, 2}));
    EXPECT_FALSE(is_clique(g, {0, 1, 3}));
    EXPECT_TRUE(has_no_incoming(g, {0, 1, 2}));
    EXPECT_FALSE(has_no_incoming(g, {3}));
    EXPECT_TRUE(is_initial_clique(g, {0, 1, 2}));
    auto cliques = initial_cliques(g);
    ASSERT_EQ(cliques.size(), 1u);
    EXPECT_EQ(cliques[0], (std::vector<int>{0, 1, 2}));
}

TEST(Clique, ReachabilityAndSourceMap) {
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    g.add_edge(2, 3);
    g.add_edge(3, 2);
    g.add_edge(1, 2);
    auto reach = reachable_from(g, {0});
    EXPECT_EQ(reach, (std::vector<int>{0, 1, 2, 3}));
    auto map = source_reachability(g);
    EXPECT_EQ(map[0], (std::vector<int>{0}));
    EXPECT_EQ(map[3], (std::vector<int>{0}));
}

// ------------------------------------------- Lemma 6 / 7 property sweeps

struct LemmaParam {
    int n;
    int delta;
    std::uint64_t seed;
};

class SourceComponentProperty : public ::testing::TestWithParam<LemmaParam> {};

TEST_P(SourceComponentProperty, Lemma6SizeAndCountBounds) {
    const auto [n, delta, seed] = GetParam();
    Digraph g = random_min_indegree(n, delta, seed);
    ASSERT_GE(g.min_in_degree(), delta);
    auto sources = source_components(g);
    ASSERT_FALSE(sources.empty());
    for (const auto& sc : sources)
        EXPECT_GE(static_cast<int>(sc.size()), delta + 1)
            << "source component smaller than delta+1";
    EXPECT_LE(static_cast<int>(sources.size()), n / (delta + 1));
    // 2*delta >= n  =>  unique source component.
    if (2 * delta >= n) {
        EXPECT_EQ(sources.size(), 1u);
    }
}

TEST_P(SourceComponentProperty, Lemma7PerWeaklyConnectedComponent) {
    const auto [n, delta, seed] = GetParam();
    Digraph g = random_min_indegree(n, delta, seed);
    auto per_wcc = source_components_per_wcc(g);
    for (const auto& sources : per_wcc) {
        ASSERT_FALSE(sources.empty());
        for (const auto& sc : sources)
            EXPECT_GE(static_cast<int>(sc.size()), delta + 1);
    }
}

TEST_P(SourceComponentProperty, EveryVertexReachesFromSomeSource) {
    const auto [n, delta, seed] = GetParam();
    if (delta == 0) return;  // the claim needs positive in-degree
    Digraph g = random_min_indegree(n, delta, seed);
    auto map = source_reachability(g);
    for (int v = 0; v < n; ++v)
        EXPECT_FALSE(map[v].empty()) << "vertex " << v << " unreachable";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SourceComponentProperty,
    ::testing::Values(LemmaParam{4, 1, 1}, LemmaParam{6, 2, 2},
                      LemmaParam{8, 3, 3}, LemmaParam{10, 2, 4},
                      LemmaParam{12, 5, 5}, LemmaParam{16, 7, 6},
                      LemmaParam{20, 4, 7}, LemmaParam{24, 11, 8},
                      LemmaParam{30, 9, 9}, LemmaParam{40, 19, 10},
                      LemmaParam{9, 1, 11}, LemmaParam{15, 6, 12}));

// The FLP stage graph: every live vertex has in-degree exactly L-1.
struct StageParam {
    int n;
    int l_minus_1;
    int dead;
    std::uint64_t seed;
};

class StageGraphProperty : public ::testing::TestWithParam<StageParam> {};

TEST_P(StageGraphProperty, SourceComponentBoundMatchesTheorem8Arithmetic) {
    const auto [n, l1, dead_count, seed] = GetParam();
    std::vector<int> dead;
    for (int i = 0; i < dead_count; ++i) dead.push_back(i);
    Digraph g = random_stage_graph(n, l1, dead, seed);

    // Restrict attention to live vertices (dead ones are isolated).
    std::vector<int> live;
    for (int v = dead_count; v < n; ++v) live.push_back(v);
    Digraph sub = g.induced(live);
    auto sources = source_components(sub);
    const int live_n = n - dead_count;
    EXPECT_LE(static_cast<int>(sources.size()), live_n / (l1 + 1));
    for (const auto& sc : sources)
        EXPECT_GE(static_cast<int>(sc.size()), l1 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StageGraphProperty,
    ::testing::Values(StageParam{6, 1, 2, 21}, StageParam{8, 3, 2, 22},
                      StageParam{10, 4, 3, 23}, StageParam{12, 3, 4, 24},
                      StageParam{15, 7, 0, 25}, StageParam{20, 9, 5, 26}));

TEST(Generators, GnpRespectsBounds) {
    Digraph empty = random_gnp(10, 0.0, 1);
    EXPECT_EQ(empty.num_edges(), 0u);
    Digraph full = random_gnp(10, 1.0, 1);
    EXPECT_EQ(full.num_edges(), 90u);
    EXPECT_THROW(random_gnp(5, 1.5, 1), UsageError);
}

TEST(Generators, MinIndegreeValidation) {
    EXPECT_THROW(random_min_indegree(4, 4, 1), UsageError);
    EXPECT_THROW(random_stage_graph(4, 3, {0}, 1), UsageError);
}

}  // namespace
}  // namespace ksa::graph
