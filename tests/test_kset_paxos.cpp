// Tests for the (Sigma, Omega_k) k-set agreement protocol and the
// Discussion-section contrast: the Theorem 10 adversary that defeats the
// (Sigma_k, Omega_k) candidate does NOT defeat it.

#include <gtest/gtest.h>

#include "algo/kset_paxos.hpp"
#include "core/kset_spec.hpp"
#include "core/theorem1.hpp"
#include "core/theorem10.hpp"
#include "fd/sources.hpp"
#include "fd/validators.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace ksa {
namespace {

std::unique_ptr<FdOracle> sigma1_omegak_oracle(int n,
                                               const FailurePlan& plan,
                                               std::vector<ProcessId> leaders) {
    return std::make_unique<fd::ComposedOracle>(
        std::make_unique<fd::CorrectSetQuorum>(n, plan),
        std::make_unique<fd::StableLeaders>(std::move(leaders), 0));
}

TEST(KSetPaxos, AtMostKValuesUnderFairSchedule) {
    const int n = 5, k = 2;
    algo::KSetPaxos algorithm(k);
    FailurePlan plan;
    auto oracle = sigma1_omegak_oracle(n, plan, {2, 4});
    RoundRobinScheduler rr;
    ksa::Run run = execute_run(algorithm, n, distinct_inputs(n), plan, rr,
                               oracle.get());
    auto check = core::check_kset_agreement(run, k);
    EXPECT_TRUE(check.ok()) << run_summary(run);
}

TEST(KSetPaxos, SurvivesCrashesOfSomeLeaders) {
    const int n = 6, k = 3;
    algo::KSetPaxos algorithm(k);
    FailurePlan plan;
    plan.set_initially_dead(1);
    plan.set_crash(3, CrashSpec{2, {}});
    auto oracle = sigma1_omegak_oracle(n, plan, {1, 3, 5});  // p5 correct
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        auto orc = sigma1_omegak_oracle(n, plan, {1, 3, 5});
        RandomScheduler sched(seed);
        ksa::Run run = execute_run(algorithm, n, distinct_inputs(n), plan,
                                   sched, orc.get());
        auto check = core::check_kset_agreement(run, k);
        EXPECT_TRUE(check.ok()) << "seed=" << seed << " " << run_summary(run);
    }
}

TEST(KSetPaxos, PreGstChaosStaysWithinKValues) {
    // Everybody believes it leads every instance before stabilization:
    // per-instance ballots arbitrate, so still <= k values.
    const int n = 5, k = 2;
    algo::KSetPaxos algorithm(k);
    FailurePlan plan;
    auto quorums = std::make_unique<fd::CorrectSetQuorum>(n, plan);
    auto leaders = std::make_unique<fd::StableLeaders>(
        std::vector<ProcessId>{1, 2}, 40, [](const QueryContext& c) {
            return std::vector<ProcessId>{c.querier,
                                          c.querier % 5 + 1};
        });
    fd::ComposedOracle oracle(std::move(quorums), std::move(leaders));
    RandomScheduler sched(3);
    ksa::Run run = execute_run(algorithm, n, distinct_inputs(n), plan, sched,
                               &oracle, {.max_steps = 80000});
    EXPECT_LE(run.distinct_decisions().size(), 2u) << run_summary(run);
    EXPECT_TRUE(run.all_correct_decided());
}

TEST(KSetPaxos, EscapesTheTheorem10Trap) {
    // Run the exact Theorem 10 construction (singleton blocks + split
    // schedule + partition detector), but strengthen the quorums to
    // Sigma_1 = correct-set (globally intersecting).  The singleton
    // blocks cannot cover a quorum in isolation, so condition (A) /
    // (dec-Dbar) of Theorem 1 fails and no violation is constructible --
    // the Discussion's design rule, executable.
    const int n = 5, k = 2;
    algo::KSetPaxos candidate(k);
    // The Theorem 10 geometry for k=2: one singleton block D_1 = {1}.
    core::PartitionSpec spec = core::make_partition_spec(n, k, {{1}});

    core::Theorem1Inputs in;
    in.algorithm = &candidate;
    in.spec = spec;
    in.inputs = distinct_inputs(n);
    in.plan = FailurePlan{};
    in.stage_budget = 400;
    in.max_steps = 20000;
    in.oracle_factory = [&](core::CertRun, const FailurePlan& plan) {
        // Sigma_1 quorums + the adversarially split leader set {2,3}.
        return std::unique_ptr<FdOracle>(std::make_unique<fd::ComposedOracle>(
            std::make_unique<fd::CorrectSetQuorum>(n, plan),
            std::make_unique<fd::StableLeaders>(
                core::theorem10_leader_set(n, k), 0)));
    };
    core::Theorem1Certificate cert = core::certify_theorem1(in);
    // The singleton block {1} cannot decide alone (its quorum spans the
    // whole correct set), so beta cannot realize (dec-Dbar).
    EXPECT_FALSE(cert.condition_b) << cert.summary();
    EXPECT_FALSE(cert.violation) << cert.summary();
}

TEST(KSetPaxos, TwoSplitLeadersCommitTwoInstancesAtMost) {
    // The very schedule that splits the flawed candidate (leaders {2,3}
    // both in D, decision announcements held back) yields at most 2 = k
    // values here -- instances are independent, but there are only k.
    const int n = 5, k = 2;
    algo::KSetPaxos algorithm(k);
    FailurePlan plan;
    auto oracle = sigma1_omegak_oracle(n, plan, {2, 3});
    std::vector<ProcessId> all{1, 2, 3, 4, 5};
    StagedScheduler::Stage hold;
    hold.active = all;
    hold.filter = [](const Message& m, ProcessId) {
        return m.payload.tag != "DEC";
    };
    hold.done = [](const SystemView& v) {
        return v.decided(2) && v.decided(3);
    };
    hold.budget = 4000;
    StagedScheduler sched({hold});
    ksa::Run run = execute_run(algorithm, n, distinct_inputs(n), plan, sched,
                               oracle.get());
    auto check = core::check_kset_agreement(run, k);
    EXPECT_TRUE(check.ok()) << run_summary(run);
    // Sanity: both leaders really decided before the release.
    EXPECT_TRUE(run.decision_of(2).has_value());
    EXPECT_TRUE(run.decision_of(3).has_value());
}

}  // namespace
}  // namespace ksa
