// Unit tests for the failure-detector library: oracle sources, history
// validators (Definitions 4, 5, 7), transformations and Lemma 9.

#include <gtest/gtest.h>

#include "fd/sources.hpp"
#include "fd/transform.hpp"
#include "fd/validators.hpp"

namespace ksa::fd {
namespace {

QueryContext ctx(ProcessId p, Time t, std::vector<ProcessId> crashed = {}) {
    QueryContext c;
    c.querier = p;
    c.now = t;
    c.crashed_so_far = std::move(crashed);
    return c;
}

/// Builds a synthetic run carrying only a detector history.
ksa::Run history_run(int n, FailurePlan plan, std::vector<FdEvent> events) {
    ksa::Run run;
    run.n = n;
    run.plan = std::move(plan);
    run.inputs = std::vector<Value>(n, 0);
    run.fd_history = std::move(events);
    return run;
}

// ------------------------------------------------------------------ sources

TEST(CorrectSetQuorum, OutputsPlannedCorrectSet) {
    FailurePlan plan;
    plan.set_initially_dead(2);
    CorrectSetQuorum q(4, plan);
    EXPECT_EQ(q.quorum(ctx(1, 5)), (std::vector<ProcessId>{1, 3, 4}));
}

TEST(CorrectSetQuorum, RejectsAllFaulty) {
    FailurePlan plan;
    for (ProcessId p = 1; p <= 3; ++p) plan.set_initially_dead(p);
    EXPECT_THROW(CorrectSetQuorum(3, plan), UsageError);
}

TEST(AliveSetQuorum, ShrinksWithCrashes) {
    AliveSetQuorum q(4);
    EXPECT_EQ(q.quorum(ctx(1, 1)), (std::vector<ProcessId>{1, 2, 3, 4}));
    EXPECT_EQ(q.quorum(ctx(1, 9, {2, 4})), (std::vector<ProcessId>{1, 3}));
}

TEST(BlockQuorum, OutputsBlockLocalQuorums) {
    FailurePlan plan;
    plan.set_initially_dead(4);
    BlockQuorum q(5, {{1}, {2, 3, 4, 5}}, plan);
    EXPECT_EQ(q.quorum(ctx(1, 1)), (std::vector<ProcessId>{1}));
    EXPECT_EQ(q.quorum(ctx(3, 2)), (std::vector<ProcessId>{2, 3, 5}));
    // A crashed querier receives Pi (Definition 7's convention).
    EXPECT_EQ(q.quorum(ctx(4, 3, {4})),
              (std::vector<ProcessId>{1, 2, 3, 4, 5}));
}

TEST(BlockQuorum, AllFaultyBlockFallsBackToAliveChain) {
    FailurePlan plan;
    plan.set_crash(2, CrashSpec{5, {}});
    plan.set_crash(3, CrashSpec{7, {}});
    BlockQuorum q(3, {{1}, {2, 3}}, plan);
    EXPECT_EQ(q.quorum(ctx(2, 1)), (std::vector<ProcessId>{2, 3}));
    EXPECT_EQ(q.quorum(ctx(3, 9, {2})), (std::vector<ProcessId>{3}));
}

TEST(StableLeaders, StabilizesAtGst) {
    StableLeaders l({3, 1}, 10, [](const QueryContext& c) {
        return std::vector<ProcessId>{c.querier};
    });
    EXPECT_EQ(l.leaders(ctx(2, 5)), (std::vector<ProcessId>{2}));
    EXPECT_EQ(l.leaders(ctx(2, 10)), (std::vector<ProcessId>{1, 3}));
    EXPECT_EQ(l.leaders(ctx(4, 99)), (std::vector<ProcessId>{1, 3}));
}

TEST(BlockLeaders, PreGstSeesOwnBlockLead) {
    FailurePlan plan;
    BlockLeaders l(5, 2, {{1}, {2, 3, 4, 5}}, plan, {2, 3}, 100);
    // Before stabilization: first live member of each block.
    EXPECT_EQ(l.leaders(ctx(1, 1)), (std::vector<ProcessId>{1, 2}));
    EXPECT_EQ(l.leaders(ctx(4, 2)), (std::vector<ProcessId>{1, 2}));
    // After stabilization: LD.
    EXPECT_EQ(l.leaders(ctx(1, 100)), (std::vector<ProcessId>{2, 3}));
    // Output always has size k (Omega_k validity).
    EXPECT_EQ(l.leaders(ctx(5, 3, {2})).size(), 2u);
}

TEST(ComposedOracle, MergesComponents) {
    FailurePlan plan;
    auto oracle = make_benign_sigma_omega(3, plan, {2});
    FdSample s = oracle->query(ctx(1, 1));
    EXPECT_EQ(s.quorum, (std::vector<ProcessId>{1, 2, 3}));
    EXPECT_EQ(s.leaders, (std::vector<ProcessId>{2}));
    EXPECT_NE(oracle->name().find("Sigma"), std::string::npos);
}

// --------------------------------------------------------------- validators

TEST(ValidateSigmaK, AcceptsIntersectingHistories) {
    ksa::Run run = history_run(3, {}, {
        {1, 1, FdSample{{1, 2}, {}}},
        {2, 2, FdSample{{2, 3}, {}}},
        {3, 3, FdSample{{1, 3}, {}}},
    });
    EXPECT_TRUE(validate_sigma_k(run, 1).ok);  // all pairs intersect
}

TEST(ValidateSigmaK, RejectsDisjointFamily) {
    ksa::Run run = history_run(3, {}, {
        {1, 1, FdSample{{1}, {}}},
        {2, 2, FdSample{{2}, {}}},
        {3, 3, FdSample{{3}, {}}},
    });
    EXPECT_FALSE(validate_sigma_k(run, 1).ok);   // {1},{2} disjoint
    EXPECT_FALSE(validate_sigma_k(run, 2).ok);   // 3 disjoint singletons
    // But k = 3 tolerates them: a violation needs 4 disjoint quorums.
    EXPECT_TRUE(validate_sigma_k(run, 3).ok);
}

TEST(ValidateSigmaK, UsesAllOutputsOfAProcess) {
    // p1 switches quorums over time; one of them is disjoint from p2's.
    ksa::Run run = history_run(2, {}, {
        {1, 1, FdSample{{1, 2}, {}}},
        {5, 1, FdSample{{1}, {}}},
        {9, 2, FdSample{{2}, {}}},
    });
    EXPECT_FALSE(validate_sigma_k(run, 1).ok);
}

TEST(ValidateSigmaK, LivenessRejectsFaultyInFinalQuorum) {
    FailurePlan plan;
    plan.set_initially_dead(3);
    ksa::Run run = history_run(3, plan, {
        {1, 1, FdSample{{1, 3}, {}}},  // early suspicion of p3 is fine...
        {9, 1, FdSample{{1, 3}, {}}},  // ...but not in the final sample
        {9, 2, FdSample{{1, 2}, {}}},
    });
    FdValidation v = validate_sigma_k(run, 1);
    EXPECT_FALSE(v.ok);
    ASSERT_FALSE(v.violations.empty());
    EXPECT_NE(v.violations[0].find("Liveness"), std::string::npos);
}

TEST(ValidateSigmaK, RejectsEmptyQuorum) {
    ksa::Run run = history_run(2, {}, {{1, 1, FdSample{{}, {}}}});
    EXPECT_FALSE(validate_sigma_k(run, 1).ok);
}

TEST(ValidateOmegaK, ValidityRequiresSizeK) {
    ksa::Run run = history_run(3, {}, {{1, 1, FdSample{{}, {1, 2}}}});
    EXPECT_TRUE(validate_omega_k(run, 2).ok);
    EXPECT_FALSE(validate_omega_k(run, 1).ok);
    EXPECT_FALSE(validate_omega_k(run, 3).ok);
}

TEST(ValidateOmegaK, EventualLeadershipChecksAgreementAndCorrectness) {
    FailurePlan plan;
    plan.set_initially_dead(3);
    // Correct processes disagree on their final leader sets.
    ksa::Run bad = history_run(3, plan, {
        {5, 1, FdSample{{}, {1, 2}}},
        {6, 2, FdSample{{}, {2, 3}}},
    });
    EXPECT_FALSE(validate_omega_k(bad, 2).ok);
    // Agreeing on an all-faulty set is also rejected.
    ksa::Run faulty_ld = history_run(3, plan, {
        {5, 1, FdSample{{}, {3, 3 == 3 ? 3 : 0}}},
    });
    faulty_ld.fd_history[0].sample.leaders = {3, 3};
    EXPECT_FALSE(validate_omega_k(faulty_ld, 2).ok);
    // Agreement on a set containing a correct process passes.
    ksa::Run good = history_run(3, plan, {
        {5, 1, FdSample{{}, {1, 3}}},
        {6, 2, FdSample{{}, {1, 3}}},
    });
    EXPECT_TRUE(validate_omega_k(good, 2).ok);
}

TEST(ValidatePartitionDetector, EnforcesBlockContainment) {
    ksa::Run run = history_run(4, {}, {
        {1, 1, FdSample{{1, 3}, {1, 2}}},  // p1 in block {1,2} sees p3: bad
        {2, 3, FdSample{{3, 4}, {1, 2}}},
    });
    FdValidation v = validate_partition_detector(run, {{1, 2}, {3, 4}}, 2);
    EXPECT_FALSE(v.ok);
}

TEST(ValidatePartitionDetector, AcceptsBlockLocalHistories) {
    ksa::Run run = history_run(4, {}, {
        {1, 1, FdSample{{1, 2}, {1, 3}}},
        {2, 2, FdSample{{2}, {1, 3}}},
        {3, 3, FdSample{{3, 4}, {1, 3}}},
        {4, 4, FdSample{{3, 4}, {1, 3}}},
    });
    EXPECT_TRUE(validate_partition_detector(run, {{1, 2}, {3, 4}}, 2).ok);
    // Lemma 9: the same history is a valid (Sigma_2, Omega_2) history.
    EXPECT_TRUE(lemma9_check(run, {{1, 2}, {3, 4}}, 2).ok);
}

TEST(ValidatePartitionDetector, RejectsDisjointQuorumsInsideBlock) {
    ksa::Run run = history_run(4, {}, {
        {1, 1, FdSample{{1}, {1, 3}}},
        {2, 2, FdSample{{2}, {1, 3}}},  // {1} vs {2} inside block {1,2}
    });
    EXPECT_FALSE(validate_partition_detector(run, {{1, 2}, {3, 4}}, 2).ok);
}

// ------------------------------------------------------------- transforms

TEST(Transform, RestrictLeadersEmulatesOmega2InSubsystem) {
    ksa::Run run = history_run(5, {}, {
        {1, 2, FdSample{{}, {1, 2, 3}}},   // leaders straddle D = {2..5}
        {2, 4, FdSample{{}, {1, 2, 3}}},
    });
    ksa::Run out = transform_history(run, restrict_leaders_to({2, 3, 4, 5}, 2));
    EXPECT_EQ(out.fd_history[0].sample.leaders, (std::vector<ProcessId>{2, 3}));
    EXPECT_TRUE(validate_omega_k(out, 2).ok);
}

TEST(Transform, RestrictQuorums) {
    ksa::Run run = history_run(4, {}, {{1, 1, FdSample{{1, 2, 3}, {}}}});
    ksa::Run out = transform_history(run, restrict_quorums_to({2, 3, 4}));
    EXPECT_EQ(out.fd_history[0].sample.quorum, (std::vector<ProcessId>{2, 3}));
}

TEST(Transform, KeepsStepRecordsConsistent) {
    ksa::Run run = history_run(2, {}, {{1, 1, FdSample{{1}, {1}}}});
    StepRecord step;
    step.time = 1;
    step.process = 1;
    step.fd = run.fd_history[0].sample;
    run.steps.push_back(step);
    ksa::Run out = transform_history(run, restrict_quorums_to({2}));
    ASSERT_TRUE(out.steps[0].fd.has_value());
    EXPECT_TRUE(out.steps[0].fd->quorum.empty());
}

}  // namespace
}  // namespace ksa::fd
